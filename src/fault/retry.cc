#include "fault/retry.h"

#include <cstdlib>

namespace stark {
namespace fault {

namespace {

uint64_t EnvU64(const char* name, uint64_t default_value) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return default_value;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0') return default_value;
  return static_cast<uint64_t>(parsed);
}

}  // namespace

uint64_t RetryPolicy::BackoffMs(size_t attempt) const {
  if (backoff_base_ms == 0) return 0;
  constexpr uint64_t kMaxBackoffMs = 10'000;
  double ms = static_cast<double>(backoff_base_ms);
  for (size_t i = 1; i < attempt; ++i) {
    ms *= backoff_multiplier;
    if (ms >= static_cast<double>(kMaxBackoffMs)) return kMaxBackoffMs;
  }
  return static_cast<uint64_t>(ms);
}

RetryPolicy RetryPolicy::FromEnv() {
  RetryPolicy policy;
  policy.max_attempts =
      static_cast<size_t>(EnvU64("STARK_TASK_RETRIES", policy.max_attempts));
  if (policy.max_attempts == 0) policy.max_attempts = 1;
  policy.backoff_base_ms =
      EnvU64("STARK_TASK_BACKOFF_MS", policy.backoff_base_ms);
  policy.fail_fast = EnvU64("STARK_TASK_FAIL_FAST", 0) != 0;
  return policy;
}

}  // namespace fault
}  // namespace stark
