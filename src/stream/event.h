/// \file event.h
/// The unit of the streaming layer: one timestamped spatio-temporal event.
/// Mirrors the batch layer's EventRecord (id, category, time, wkt) after
/// spatial parsing — sources emit StreamEvents, windows buffer them, and
/// CEP predicates evaluate their STObject exactly like a batch filter.
#ifndef STARK_STREAM_EVENT_H_
#define STARK_STREAM_EVENT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/stobject.h"
#include "io/csv.h"

namespace stark {
namespace stream {

/// \brief One event on the stream.
///
/// `id` identifies the *logical* event: at-least-once sources may deliver
/// the same id twice, and the window layer deduplicates on it (exactly-once
/// window contents). Event time is the STObject's temporal component; every
/// StreamEvent must carry one (sources guarantee this).
struct StreamEvent {
  int64_t id = 0;
  std::string category;
  STObject obj;

  StreamEvent() : obj(Geometry::MakePoint({0.0, 0.0}), Instant{0}) {}
  StreamEvent(int64_t id_in, std::string category_in, STObject obj_in)
      : id(id_in), category(std::move(category_in)), obj(std::move(obj_in)) {}

  /// Event time on the stream's time axis: the start of the STObject's
  /// interval (instants are degenerate intervals, so start == the instant).
  Instant event_time() const { return obj.time()->start(); }
};

/// Canonical window ordering: (event time, id). Sorting fired-window
/// contents this way makes every downstream answer independent of arrival
/// order — the heart of the streaming == batch determinism guarantee.
inline bool CanonicalLess(const StreamEvent& a, const StreamEvent& b) {
  const Instant ta = a.event_time();
  const Instant tb = b.event_time();
  if (ta != tb) return ta < tb;
  return a.id < b.id;
}

/// Parses a raw CSV row into a StreamEvent (WKT + instant time), the same
/// preprocessing the batch pipeline applies in EventsToPairs.
inline Result<StreamEvent> EventFromRecord(const EventRecord& record) {
  STARK_ASSIGN_OR_RETURN(STObject obj,
                         STObject::FromWkt(record.wkt, record.time));
  return StreamEvent(record.id, record.category, std::move(obj));
}

}  // namespace stream
}  // namespace stark

#endif  // STARK_STREAM_EVENT_H_
