/// \file source.h
/// Replayable streaming sources. Both built-in sources are deterministic
/// replay machines: GeneratorSource derives its whole arrival schedule from
/// a seed, and CsvTailSource re-reads a file from a byte offset — Reset()
/// rewinds either one to an identical re-run, which is what the
/// deterministic stream-replay harness is built on.
#ifndef STARK_STREAM_SOURCE_H_
#define STARK_STREAM_SOURCE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "geometry/envelope.h"
#include "stream/event.h"

namespace stark {
namespace stream {

/// \brief Pull-based micro-batch source.
///
/// Poll() hands out up to max_events ready events in arrival order; a
/// source that has (currently) nothing ready returns an empty batch. A
/// source with Exhausted() == true will never produce again.
class StreamSource {
 public:
  virtual ~StreamSource() = default;

  virtual const std::string& name() const = 0;
  virtual std::vector<StreamEvent> Poll(size_t max_events) = 0;
  virtual bool Exhausted() const = 0;

  /// Rewinds to the beginning for an identical replay.
  virtual void Reset() = 0;
};

/// Parameters of the seeded event generator.
struct GeneratorOptions {
  size_t count = 1'000;
  uint64_t seed = 42;
  Envelope universe = Envelope(0, 0, 100, 100);
  /// Event i carries event time i * time_step.
  int64_t time_step = 1;
  /// Maximum event-time displacement of the arrival order: an event may
  /// arrive after events up to `disorder` ticks ahead of it. A watermark
  /// bound >= disorder guarantees no event is late.
  int64_t disorder = 0;
  /// Probability that an event is delivered twice (at-least-once source);
  /// the duplicate arrives immediately after the original.
  double duplicate_probability = 0.0;
  std::vector<std::string> categories = {"politics", "sports", "culture",
                                         "disaster", "science"};
};

/// \brief Deterministic in-memory event generator.
///
/// The full arrival schedule (positions, categories, shuffled arrival
/// order, duplicates) is a pure function of the options, precomputed at
/// construction: two GeneratorSources with equal options emit identical
/// sequences, and Reset() replays this one from the start.
class GeneratorSource final : public StreamSource {
 public:
  explicit GeneratorSource(const GeneratorOptions& options);

  const std::string& name() const override { return name_; }
  std::vector<StreamEvent> Poll(size_t max_events) override;
  bool Exhausted() const override { return cursor_ >= schedule_.size(); }
  void Reset() override { cursor_ = 0; }

  /// Events in the schedule, duplicates included.
  size_t schedule_size() const { return schedule_.size(); }

 private:
  std::string name_;
  std::vector<StreamEvent> schedule_;  // arrival order
  size_t cursor_ = 0;
};

/// \brief Tails an event CSV file (the paper's id,category,time,wkt schema).
///
/// Each Poll() reads the bytes appended since the previous one and parses
/// the complete lines among them (a trailing partial line waits for the
/// writer to finish it). With stop_at_eof, a poll that finds no new bytes
/// marks the source exhausted — the mode the replay tests and EMIT use;
/// without it the tailer follows the file forever, like `tail -f`.
class CsvTailSource final : public StreamSource {
 public:
  explicit CsvTailSource(std::string path, bool stop_at_eof = true);

  const std::string& name() const override { return name_; }
  std::vector<StreamEvent> Poll(size_t max_events) override;
  bool Exhausted() const override { return exhausted_; }
  void Reset() override;

  /// Lines that failed CSV or WKT parsing (skipped, never fatal).
  size_t parse_errors() const { return parse_errors_; }

 private:
  std::string name_;
  std::string path_;
  bool stop_at_eof_;
  uint64_t offset_ = 0;
  std::string pending_;  // trailing partial line from the previous poll
  std::vector<StreamEvent> ready_;  // parsed but not yet handed out
  size_t ready_cursor_ = 0;
  bool exhausted_ = false;
  size_t parse_errors_ = 0;
};

}  // namespace stream
}  // namespace stark

#endif  // STARK_STREAM_SOURCE_H_
