/// \file stream_context.h
/// Driver of a continuous query: polls sources in micro-batches, advances
/// per-source watermarks, routes events into the window manager, and
/// executes every fired window as a *normal* Context job — so job
/// deadlines, task retries, speculation, profiling and the flight recorder
/// apply to streaming exactly as they do to batch (nothing in the engine
/// knows it is running under a stream).
#ifndef STARK_STREAM_STREAM_CONTEXT_H_
#define STARK_STREAM_STREAM_CONTEXT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "engine/context.h"
#include "stream/cep.h"
#include "stream/source.h"
#include "stream/watermark.h"
#include "stream/window.h"

namespace stark {
namespace stream {

/// Everything a fired window produced: its (complete, canonically ordered)
/// contents and the pattern matches over them.
struct WindowResult {
  FiredWindow window;
  std::vector<PatternMatch> matches;
};

/// Per-query counters, mirrored into the global metrics registry
/// (stream.events.*, stream.windows.fired) but kept locally so tests can
/// reconcile one query's books without inter-test metric bleed.
struct StreamStats {
  uint64_t ingested = 0;    // every delivery, duplicates included
  uint64_t accepted = 0;    // entered a window buffer
  uint64_t late = 0;        // behind the watermark at arrival
  uint64_t dropped = 0;     // late under LatePolicy::kDrop
  uint64_t side_output = 0; // late under LatePolicy::kSideOutput
  uint64_t duplicates = 0;  // id already delivered
  uint64_t windows_fired = 0;
  uint64_t matches = 0;
};

/// \brief One continuous query: sources -> watermarks -> windows -> CEP ->
/// sink.
///
/// Single-driver protocol: Step()/RunToCompletion() are called from one
/// thread. Ingest() itself is thread-safe so external source threads can
/// feed the query concurrently (the watermark fuzz suite races several);
/// under concurrent ingest the late/accepted split depends on interleaving,
/// but the invariants — watermark monotonicity, counter reconciliation,
/// exactly-once window delivery — hold regardless.
class StreamContext {
 public:
  struct Options {
    WindowSpec window;
    LatePolicy late_policy = LatePolicy::kDrop;
    /// Pattern evaluated over each fired window; without one, each window
    /// is still materialized through an engine job and delivered whole.
    std::optional<PatternSpec> pattern;
    /// Events pulled per source per Step().
    size_t poll_batch = 256;
    /// Partition-tasks per window job; 0 = the context's parallelism.
    size_t tasks_per_window = 0;
  };

  StreamContext(Context* ctx, Options options);

  /// Registers a source with its out-of-orderness bound; returns the source
  /// slot for Ingest(). All sources must be added before the first Step().
  size_t AddSource(std::unique_ptr<StreamSource> source,
                   int64_t watermark_bound);

  /// Registers a bare watermark tracker without a pollable source, for
  /// callers that push events via Ingest() themselves (test harnesses,
  /// external threads). Returns the source slot.
  size_t AddExternalSource(int64_t watermark_bound);

  /// Sink invoked exactly once per fired window, in window-start order.
  void SetSink(std::function<void(const WindowResult&)> sink);

  /// Routes one event attributed to source slot \p source_idx. Thread-safe.
  void Ingest(size_t source_idx, const StreamEvent& event);

  /// Minimum watermark across sources. An exhausted source no longer holds
  /// the query back (it contributes +inf); before any source has observed
  /// an event the result is kMinWatermark and nothing fires.
  Instant CombinedWatermark() const;

  /// One micro-batch round: polls every live source once, ingests, then
  /// fires and executes every ripe window. Returns the number of events
  /// polled (0 with AllExhausted() means the stream has drained).
  Result<size_t> Step();

  /// Executes all windows at or behind the current combined watermark.
  Status FireReady();

  /// End-of-stream: fires every remaining buffered window.
  Status Flush();

  /// Drains every source to exhaustion, then flushes. The whole replay of a
  /// bounded stream.
  Status RunToCompletion();

  bool AllExhausted() const;

  StreamStats stats() const;

  /// Late events captured under LatePolicy::kSideOutput (arrival order).
  std::vector<StreamEvent> TakeSideOutput();

  /// Starts of every window delivered to the sink, in delivery order; the
  /// exactly-once ledger the fault tests audit (no losses, no duplicates).
  const std::vector<int64_t>& delivered_window_starts() const {
    return delivered_order_;
  }

  Context* ctx() const { return ctx_; }
  const Options& options() const { return options_; }

 private:
  Status ExecuteWindow(FiredWindow window);
  void UpdateWatermarkLag();

  /// Watermark for judging lateness: min over ALL trackers, exhausted or
  /// not. An exhausted source's final watermark is still the correct bound
  /// for its own last polled batch, which is ingested after Exhausted()
  /// already reads true — skipping it there (as CombinedWatermark does for
  /// firing) would judge that batch against +inf and drop it wholesale.
  Instant IngestWatermark() const;

  Context* ctx_;
  Options options_;
  WindowManager manager_;
  std::vector<std::unique_ptr<StreamSource>> sources_;
  std::vector<std::unique_ptr<WatermarkTracker>> trackers_;
  std::function<void(const WindowResult&)> sink_;

  mutable std::mutex stats_mu_;
  StreamStats stats_;

  std::unordered_set<int64_t> delivered_;
  std::vector<int64_t> delivered_order_;
};

}  // namespace stream
}  // namespace stark

#endif  // STARK_STREAM_STREAM_CONTEXT_H_
