/// \file window.h
/// Event-time windows over StreamEvent time: tumbling and sliding windows
/// that fire on watermark advance, with late-event policy and duplicate
/// suppression. Windows are half-open [start, start + size) intervals whose
/// starts are aligned to multiples of the slide, so assignment is pure
/// arithmetic and identical for the streaming path and the batch oracle.
#ifndef STARK_STREAM_WINDOW_H_
#define STARK_STREAM_WINDOW_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <unordered_set>
#include <vector>

#include "stream/event.h"
#include "stream/watermark.h"

namespace stark {
namespace stream {

/// What happens to an event that arrives behind the watermark.
enum class LatePolicy {
  kDrop,        // count it and discard
  kSideOutput,  // count it and append to the side-output channel
};

/// Window shape. slide == 0 (or slide == size) is a tumbling window; a
/// smaller slide yields overlapping sliding windows.
struct WindowSpec {
  int64_t size = 1;
  int64_t slide = 0;

  int64_t EffectiveSlide() const { return slide > 0 ? slide : size; }
};

/// Floor division (round toward -inf), so window alignment is correct for
/// negative event times too.
inline int64_t FloorDiv(int64_t a, int64_t b) {
  int64_t q = a / b;
  if (a % b != 0 && ((a < 0) != (b < 0))) --q;
  return q;
}

/// Start of the last (highest-start) window containing event time \p t.
inline int64_t LastWindowStart(Instant t, const WindowSpec& spec) {
  return FloorDiv(t, spec.EffectiveSlide()) * spec.EffectiveSlide();
}

/// All aligned window starts whose half-open window [s, s + size) contains
/// event time \p t, in ascending order.
inline std::vector<int64_t> WindowStartsFor(Instant t, const WindowSpec& spec) {
  const int64_t slide = spec.EffectiveSlide();
  std::vector<int64_t> starts;
  for (int64_t s = LastWindowStart(t, spec); s > t - spec.size; s -= slide) {
    starts.push_back(s);
  }
  for (size_t i = 0, j = starts.size(); i + 1 < j; ++i, --j) {
    std::swap(starts[i], starts[j - 1]);
  }
  return starts;
}

/// One complete window, ready for pattern evaluation. Events are in
/// canonical (event_time, id) order regardless of arrival order.
struct FiredWindow {
  int64_t start = 0;
  int64_t end = 0;  // exclusive
  std::vector<StreamEvent> events;
};

/// \brief Buffers in-flight windows and fires them when the watermark
/// passes their end.
///
/// Protocol (enforced by StreamContext): for each arriving event, compute
/// the combined watermark W *before* observing the event, then call
/// Ingest(event, W). The event is late iff its time is < W; a non-late
/// event's windows all end after W, so no window an accepted event joins
/// can already have fired — every event is atomically in all of its windows
/// or in none (late). Windows fire, in start order and with no gaps, once
/// W >= end; empty windows between occupied ones fire too, so the window
/// sequence is dense over the covered time range (matching the batch
/// oracle's enumeration exactly).
///
/// Duplicate suppression: the first arrival of each id wins; later arrivals
/// are reported as duplicates and never buffered, which is what makes
/// exactly-once sinks safe under at-least-once sources. State note: the ids
/// set grows with the unique-event count — real deployments would TTL it
/// past the watermark; the replay harness runs bounded streams.
///
/// Thread-safe: concurrent sources may ingest while the driver collects.
class WindowManager {
 public:
  WindowManager(const WindowSpec& spec, LatePolicy policy)
      : spec_(spec), policy_(policy) {}

  struct IngestResult {
    bool accepted = false;
    bool late = false;
    bool duplicate = false;
  };

  /// Routes one event given the combined watermark at its arrival.
  IngestResult Ingest(const StreamEvent& event, Instant watermark);

  /// Fires every window with end <= \p watermark, in start order. Includes
  /// empty windows between the first-ever occupied window and the frontier.
  std::vector<FiredWindow> CollectRipe(Instant watermark);

  /// End-of-stream: fires all remaining buffered windows (and the empty
  /// ones between them), in start order.
  std::vector<FiredWindow> Flush();

  /// Late events captured under LatePolicy::kSideOutput, in arrival order.
  std::vector<StreamEvent> TakeSideOutput();

  const WindowSpec& spec() const { return spec_; }

 private:
  /// Pops the window starting at next_start_ (occupied or empty), advances
  /// the frontier, and appends it to \p out. Caller holds mu_.
  void FireFrontierLocked(std::vector<FiredWindow>* out);

  WindowSpec spec_;
  LatePolicy policy_;

  mutable std::mutex mu_;
  /// Buffered events per window start; keys are aligned starts >= frontier.
  std::map<int64_t, std::vector<StreamEvent>> buffered_;
  /// Next window start to fire; unset until the first event is accepted.
  /// Until the first firing it may still extend downward as out-of-order
  /// events reveal earlier windows; afterwards it only advances.
  std::optional<int64_t> next_start_;
  bool fired_any_ = false;
  std::unordered_set<int64_t> seen_ids_;
  std::vector<StreamEvent> side_output_;
};

}  // namespace stream
}  // namespace stark

#endif  // STARK_STREAM_WINDOW_H_
