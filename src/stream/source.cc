#include "stream/source.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/rng.h"
#include "geometry/wkt.h"
#include "io/csv.h"
#include "obs/metrics.h"

namespace {
// Registry mirror of the per-source parse_errors_ member, so dropped input
// is visible in OpenMetrics exports (stark_stream_source_parse_errors_total)
// and not only to callers holding the source object.
stark::obs::Counter* ParseErrorCounter() {
  static stark::obs::Counter* const c =
      stark::obs::DefaultMetrics().GetCounter("stream.source.parse_errors");
  return c;
}
}  // namespace

namespace stark {
namespace stream {

GeneratorSource::GeneratorSource(const GeneratorOptions& options)
    : name_("generator(seed=" + std::to_string(options.seed) + ")") {
  Rng rng(options.seed);
  const size_t n_categories = std::max<size_t>(options.categories.size(), 1);
  // Events in event-time order first...
  std::vector<StreamEvent> in_order;
  in_order.reserve(options.count);
  for (size_t i = 0; i < options.count; ++i) {
    const Coordinate c{
        rng.Uniform(options.universe.min_x(), options.universe.max_x()),
        rng.Uniform(options.universe.min_y(), options.universe.max_y())};
    const std::string& category =
        options.categories.empty()
            ? name_
            : options.categories[i % n_categories];
    in_order.emplace_back(
        static_cast<int64_t>(i), category,
        STObject(Geometry::MakePoint(c),
                 static_cast<Instant>(i) * options.time_step));
  }
  // ...then shuffled into an arrival order with bounded displacement: sort
  // by (event_time + jitter in [0, disorder]). Any event that arrives
  // before e has time <= e.time + disorder, so with a watermark bound
  // >= disorder no generated event is ever late.
  std::vector<std::pair<int64_t, size_t>> arrival;
  arrival.reserve(in_order.size());
  for (size_t i = 0; i < in_order.size(); ++i) {
    const int64_t jitter =
        options.disorder > 0 ? rng.UniformInt(0, options.disorder) : 0;
    arrival.emplace_back(in_order[i].event_time() + jitter, i);
  }
  std::sort(arrival.begin(), arrival.end());
  schedule_.reserve(in_order.size());
  for (const auto& [key, i] : arrival) {
    schedule_.push_back(in_order[i]);
    if (options.duplicate_probability > 0 &&
        rng.Bernoulli(options.duplicate_probability)) {
      schedule_.push_back(in_order[i]);  // at-least-once redelivery
    }
  }
}

std::vector<StreamEvent> GeneratorSource::Poll(size_t max_events) {
  std::vector<StreamEvent> batch;
  const size_t end = std::min(schedule_.size(), cursor_ + max_events);
  batch.reserve(end - cursor_);
  for (; cursor_ < end; ++cursor_) batch.push_back(schedule_[cursor_]);
  return batch;
}

CsvTailSource::CsvTailSource(std::string path, bool stop_at_eof)
    : name_("tail(" + path + ")"), path_(std::move(path)),
      stop_at_eof_(stop_at_eof) {}

void CsvTailSource::Reset() {
  offset_ = 0;
  pending_.clear();
  ready_.clear();
  ready_cursor_ = 0;
  exhausted_ = false;
  parse_errors_ = 0;
}

std::vector<StreamEvent> CsvTailSource::Poll(size_t max_events) {
  // Refill from the file when the parsed backlog is drained.
  if (ready_cursor_ >= ready_.size() && !exhausted_) {
    ready_.clear();
    ready_cursor_ = 0;
    std::string appended;
    std::FILE* f = std::fopen(path_.c_str(), "rb");
    if (f != nullptr) {
      std::fseek(f, static_cast<long>(offset_), SEEK_SET);
      char buf[4096];
      size_t got;
      while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
        appended.append(buf, got);
        offset_ += got;
      }
      std::fclose(f);
    }
    if (appended.empty()) {
      // Nothing new since the last poll. A replay run is complete; a live
      // tail keeps following the file.
      if (stop_at_eof_) exhausted_ = true;
    } else {
      pending_ += appended;
      // Only complete lines parse; a partial trailing line stays pending.
      const size_t last_newline = pending_.rfind('\n');
      if (last_newline != std::string::npos) {
        const std::string complete = pending_.substr(0, last_newline + 1);
        pending_.erase(0, last_newline + 1);
        Result<std::vector<EventRecord>> records = ParseEventsCsv(complete);
        if (!records.ok()) {
          // A malformed chunk is skipped wholesale rather than wedging the
          // tailer; per-row WKT errors are counted below.
          ++parse_errors_;
          ParseErrorCounter()->Increment();
        } else {
          for (const EventRecord& record : records.ValueOrDie()) {
            // Point-schema fast path: the dominant `POINT (x y)` rows skip
            // the generic WKT keyword dispatch; the scanner uses the same
            // number parsing, so the event is bit-identical to the one
            // EventFromRecord builds.
            double x = 0.0;
            double y = 0.0;
            if (ParsePointWkt(record.wkt, &x, &y)) {
              ready_.emplace_back(
                  record.id, record.category,
                  STObject(Geometry::MakePoint({x, y}), record.time));
              continue;
            }
            Result<StreamEvent> event = EventFromRecord(record);
            if (!event.ok()) {
              ++parse_errors_;
              ParseErrorCounter()->Increment();
              continue;
            }
            ready_.push_back(std::move(event).ValueOrDie());
          }
        }
      }
    }
  }
  std::vector<StreamEvent> batch;
  const size_t end = std::min(ready_.size(), ready_cursor_ + max_events);
  batch.reserve(end - ready_cursor_);
  for (; ready_cursor_ < end; ++ready_cursor_) {
    batch.push_back(std::move(ready_[ready_cursor_]));
  }
  return batch;
}

}  // namespace stream
}  // namespace stark
