#include "stream/cep.h"

#include <algorithm>
#include <utility>

#include "index/packed_rtree.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace stark {
namespace stream {

namespace {

/// Below this many range events a linear BoundPredicate scan beats building
/// a throwaway tree (same break-even shape as the live-index filter path).
constexpr size_t kTreeThreshold = 32;

/// Matched indices within [begin, end), ascending. Exactness contract: the
/// result must equal {i : step.Matches(events[i])} — the tree is only a
/// candidate generator, every candidate is refined with BoundPredicate.
std::vector<size_t> MatchRange(const std::vector<StreamEvent>& events,
                               const StepPredicate& step, size_t begin,
                               size_t end) {
  static obs::Counter* const tree_probes =
      obs::DefaultMetrics().GetCounter("stream.cep.tree_probes");
  std::vector<size_t> matched;
  if (!step.region.has_value()) {
    for (size_t i = begin; i < end; ++i) {
      if (step.category.empty() || events[i].category == step.category) {
        matched.push_back(i);
      }
    }
    return matched;
  }
  // Category prefilter feeds the spatial stage.
  std::vector<size_t> pool;
  for (size_t i = begin; i < end; ++i) {
    if (step.category.empty() || events[i].category == step.category) {
      pool.push_back(i);
    }
  }
  const BoundPredicate::Side side = BoundPredicate::Side::kCandidateLeft;
  BoundPredicate bound(step.pred, *step.region, side);
  const bool spatial_only = !step.region->HasTime();
  auto refine = [&](size_t i) {
    const STObject& obj = events[i].obj;
    return spatial_only ? bound.Eval(STObject(obj.geo())) : bound.Eval(obj);
  };
  size_t candidates = 0;
  if (step.pred.Prunable() && pool.size() >= kTreeThreshold) {
    std::vector<std::pair<Envelope, size_t>> entries;
    entries.reserve(pool.size());
    for (size_t i : pool) entries.emplace_back(events[i].obj.envelope(), i);
    PackedRTree<size_t> tree(16, std::move(entries));
    const Envelope query =
        step.region->envelope().Expanded(step.pred.EnvelopeMargin());
    tree.Query(query, [&](const Envelope&, const size_t& i) {
      ++candidates;
      if (refine(i)) matched.push_back(i);
    });
    tree_probes->Increment();
    std::sort(matched.begin(), matched.end());
  } else {
    candidates = pool.size();
    for (size_t i : pool) {
      if (refine(i)) matched.push_back(i);
    }
  }
  if (obs::TaskSpan* span = obs::CurrentTaskSpan()) {
    span->records_in += end - begin;
    span->candidates += candidates;
    span->refined += matched.size();
    span->records_out += matched.size();
  }
  return matched;
}

/// Depth-first enumeration of sequence tuples: one matched index per step,
/// strictly increasing event time between consecutive steps, total span
/// within the bound. Step index lists are ascending, so emitted tuples are
/// in lexicographic (and therefore deterministic) order.
void EnumerateSequences(const std::vector<StreamEvent>& events,
                        const std::vector<std::vector<size_t>>& step_indices,
                        int64_t within, size_t step, Instant first_time,
                        Instant prev_time, std::vector<size_t>* tuple,
                        std::vector<std::vector<size_t>>* out) {
  if (step == step_indices.size()) {
    out->push_back(*tuple);
    return;
  }
  for (size_t i : step_indices[step]) {
    const Instant t = events[i].event_time();
    if (step > 0) {
      if (t <= prev_time) continue;
      if (within > 0 && t - first_time > within) continue;
    }
    tuple->push_back(i);
    EnumerateSequences(events, step_indices, within, step + 1,
                       step == 0 ? t : first_time, t, tuple, out);
    tuple->pop_back();
  }
}

}  // namespace

Result<std::vector<size_t>> MatchStepIndices(
    Context* ctx, const std::shared_ptr<const std::vector<StreamEvent>>& events,
    const StepPredicate& step, size_t num_tasks) {
  const size_t n = events->size();
  const size_t tasks = std::max<size_t>(
      1, std::min(num_tasks != 0 ? num_tasks : ctx->default_parallelism(),
                  std::max<size_t>(n, 1)));
  std::vector<std::vector<size_t>> slots(tasks);
  const size_t chunk = (n + tasks - 1) / tasks;
  STARK_RETURN_NOT_OK(
      ctx->TryRunTasks("stream.window.match", tasks, [&](size_t p) {
        const size_t begin = std::min(p * chunk, n);
        const size_t end = std::min(begin + chunk, n);
        // A retried or speculative copy rebuilds its slot from scratch;
        // the claim protocol guarantees a single writer per slot.
        slots[p] = MatchRange(*events, step, begin, end);
      }));
  std::vector<size_t> matched;
  for (std::vector<size_t>& slot : slots) {
    matched.insert(matched.end(), slot.begin(), slot.end());
  }
  return matched;  // ranges are disjoint and ordered, so this is ascending
}

Result<std::vector<PatternMatch>> EvaluatePattern(Context* ctx,
                                                  const PatternSpec& spec,
                                                  const FiredWindow& window,
                                                  size_t num_tasks) {
  static obs::Counter* const matches_counter =
      obs::DefaultMetrics().GetCounter("stream.matches");
  if (spec.steps.empty()) {
    return Status::InvalidArgument("stream: pattern has no steps");
  }
  const auto events =
      std::make_shared<const std::vector<StreamEvent>>(window.events);
  std::vector<std::vector<size_t>> step_indices;
  step_indices.reserve(spec.steps.size());
  for (const StepPredicate& step : spec.steps) {
    STARK_ASSIGN_OR_RETURN(std::vector<size_t> indices,
                           MatchStepIndices(ctx, events, step, num_tasks));
    step_indices.push_back(std::move(indices));
  }

  std::vector<PatternMatch> matches;
  switch (spec.kind) {
    case PatternKind::kCount: {
      const int64_t count = static_cast<int64_t>(step_indices[0].size());
      if (EvalCountCmp(count, spec.cmp, spec.threshold)) {
        PatternMatch match;
        match.window_start = window.start;
        match.window_end = window.end;
        match.count = count;
        for (size_t i : step_indices[0]) {
          match.events.push_back((*events)[i]);
        }
        matches.push_back(std::move(match));
      }
      break;
    }
    case PatternKind::kAbsence: {
      if (step_indices[0].empty()) {
        PatternMatch match;
        match.window_start = window.start;
        match.window_end = window.end;
        match.count = 0;
        matches.push_back(std::move(match));
      }
      break;
    }
    case PatternKind::kSequence: {
      if (spec.steps.size() < 2) {
        return Status::InvalidArgument(
            "stream: SEQ pattern needs at least two steps");
      }
      std::vector<std::vector<size_t>> tuples;
      std::vector<size_t> tuple;
      EnumerateSequences(*events, step_indices, spec.within, 0, 0, 0, &tuple,
                         &tuples);
      for (const std::vector<size_t>& t : tuples) {
        PatternMatch match;
        match.window_start = window.start;
        match.window_end = window.end;
        match.count = static_cast<int64_t>(t.size());
        for (size_t i : t) match.events.push_back((*events)[i]);
        matches.push_back(std::move(match));
      }
      break;
    }
  }
  matches_counter->Add(matches.size());
  return matches;
}

}  // namespace stream
}  // namespace stark
