#include "stream/window.h"

#include <algorithm>

namespace stark {
namespace stream {

WindowManager::IngestResult WindowManager::Ingest(const StreamEvent& event,
                                                  Instant watermark) {
  IngestResult result;
  const Instant t = event.event_time();
  std::lock_guard<std::mutex> lock(mu_);
  if (!seen_ids_.insert(event.id).second) {
    result.duplicate = true;
    return result;
  }
  if (watermark != kMinWatermark && t < watermark) {
    result.late = true;
    if (policy_ == LatePolicy::kSideOutput) side_output_.push_back(event);
    return result;
  }
  std::vector<int64_t> starts = WindowStartsFor(t, spec_);
  if (starts.empty()) {
    // slide > size leaves gaps between windows; an event falling in a gap
    // is on time but belongs to no window.
    result.accepted = true;
    return result;
  }
  if (fired_any_ && next_start_.has_value()) {
    // Once firing has begun the frontier never rewinds: windows below it
    // already fired. With one source a non-late event can't land below the
    // frontier at all; under multi-source races (the ingest watermark
    // trails the firing watermark once some source is exhausted) an event
    // whose every window has fired is reclassified as late, keeping sink
    // delivery exactly-once. Before the first firing no window has fired,
    // so an out-of-order event may still open earlier windows freely.
    starts.erase(std::remove_if(starts.begin(), starts.end(),
                                [this](int64_t s) {
                                  return s < *next_start_;
                                }),
                 starts.end());
    if (starts.empty()) {
      result.late = true;
      if (policy_ == LatePolicy::kSideOutput) side_output_.push_back(event);
      return result;
    }
  }
  for (int64_t s : starts) buffered_[s].push_back(event);
  // The frontier starts at the earliest window of the earliest accepted
  // event; before the first firing it can only extend downward.
  if (!next_start_.has_value() || starts.front() < *next_start_) {
    next_start_ = starts.front();
  }
  result.accepted = true;
  return result;
}

void WindowManager::FireFrontierLocked(std::vector<FiredWindow>* out) {
  FiredWindow fired;
  fired.start = *next_start_;
  fired.end = *next_start_ + spec_.size;
  const auto it = buffered_.find(*next_start_);
  if (it != buffered_.end()) {
    fired.events = std::move(it->second);
    buffered_.erase(it);
  }
  std::sort(fired.events.begin(), fired.events.end(), CanonicalLess);
  out->push_back(std::move(fired));
  *next_start_ += spec_.EffectiveSlide();
  fired_any_ = true;
}

std::vector<FiredWindow> WindowManager::CollectRipe(Instant watermark) {
  std::vector<FiredWindow> out;
  if (watermark == kMinWatermark) return out;
  std::lock_guard<std::mutex> lock(mu_);
  // Dense firing is bounded by the last occupied window: without the
  // buffered_ guard a +inf watermark (all sources exhausted) would emit
  // empty windows forever. Trailing empty windows past the last event do
  // not exist in the batch oracle either.
  while (next_start_.has_value() && !buffered_.empty() &&
         *next_start_ + spec_.size <= watermark &&
         *next_start_ <= buffered_.rbegin()->first) {
    FireFrontierLocked(&out);
  }
  return out;
}

std::vector<FiredWindow> WindowManager::Flush() {
  std::vector<FiredWindow> out;
  std::lock_guard<std::mutex> lock(mu_);
  while (next_start_.has_value() && !buffered_.empty() &&
         *next_start_ <= buffered_.rbegin()->first) {
    FireFrontierLocked(&out);
  }
  return out;
}

std::vector<StreamEvent> WindowManager::TakeSideOutput() {
  std::lock_guard<std::mutex> lock(mu_);
  return std::move(side_output_);
}

}  // namespace stream
}  // namespace stark
