/// \file cep.h
/// Complex-event-processing operators over fired window contents: sequence
/// (A then B within Δt), absence, and count/aggregate-over-window. Every
/// step predicate is a spatio-temporal filter — category equality plus an
/// optional region constraint evaluated through the same BoundPredicate
/// refinement (and, for large windows, PackedRTree candidate pruning) as
/// the batch filter path, so streaming matches are bit-for-bit identical to
/// a batch recomputation of the window.
#ifndef STARK_STREAM_CEP_H_
#define STARK_STREAM_CEP_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/context.h"
#include "spatial_rdd/predicate.h"
#include "stream/window.h"

namespace stark {
namespace stream {

/// \brief One pattern step: "an event of this category, in this region".
///
/// An empty category matches any event. A region without a temporal
/// component constrains space only (the event's time is ignored); a region
/// with one uses the combined spatio-temporal predicate semantics of the
/// paper (formula (1)-(3)).
struct StepPredicate {
  std::string category;
  std::optional<STObject> region;
  JoinPredicate pred = JoinPredicate::Intersects();

  /// Scalar evaluation (the reference semantics; the parallel path in
  /// MatchStepIndices must agree exactly).
  bool Matches(const StreamEvent& event) const {
    if (!category.empty() && event.category != category) return false;
    if (!region.has_value()) return true;
    if (!region->HasTime()) {
      return pred.Eval(STObject(event.obj.geo()), *region);
    }
    return pred.Eval(event.obj, *region);
  }
};

enum class PatternKind { kSequence, kAbsence, kCount };

/// Comparison applied to the matched-event count of a COUNT pattern.
enum class CountCmp { kGe, kGt, kLe, kLt, kEq };

inline bool EvalCountCmp(int64_t count, CountCmp cmp, int64_t threshold) {
  switch (cmp) {
    case CountCmp::kGe: return count >= threshold;
    case CountCmp::kGt: return count > threshold;
    case CountCmp::kLe: return count <= threshold;
    case CountCmp::kLt: return count < threshold;
    case CountCmp::kEq: return count == threshold;
  }
  return false;
}

/// \brief A CEP pattern over one window.
///
/// kSequence: steps.size() >= 2; a match is one event per step with
/// strictly increasing event times, all inside the window, spanning at most
/// `within` ticks from first to last (within == 0 means unbounded).
/// kAbsence: one step; the pattern fires iff NO window event matches it.
/// kCount: one step; fires iff EvalCountCmp(matches, cmp, threshold).
struct PatternSpec {
  PatternKind kind = PatternKind::kCount;
  std::vector<StepPredicate> steps;
  int64_t within = 0;
  CountCmp cmp = CountCmp::kGe;
  int64_t threshold = 1;
};

/// One pattern firing. For kSequence, `events` is the matched tuple (one
/// event per step, time-ordered); for kCount, the matched events in
/// canonical order; for kAbsence, empty. `count` is the step-0 match count
/// (kCount/kAbsence) or the tuple size (kSequence).
struct PatternMatch {
  int64_t window_start = 0;
  int64_t window_end = 0;
  std::vector<StreamEvent> events;
  int64_t count = 0;
};

/// \brief Indices (into \p events, ascending) of the events matching
/// \p step, computed as one engine job of \p num_tasks partition-tasks.
///
/// Each task evaluates a contiguous index range: category prefilter, then
/// either a PackedRTree candidate pass over the range (prunable region
/// predicates on enough events) refined with BoundPredicate, or a direct
/// BoundPredicate scan. Both paths are exact, so the result equals the
/// scalar `step.Matches` applied to every event — the task decomposition
/// and index structure are invisible in the answer.
Result<std::vector<size_t>> MatchStepIndices(
    Context* ctx, const std::shared_ptr<const std::vector<StreamEvent>>& events,
    const StepPredicate& step, size_t num_tasks);

/// Evaluates \p spec over one fired window, running each step's matching as
/// an engine job on \p ctx (deadlines, retries, speculation and the flight
/// recorder all apply). Deterministic: matches depend only on the window
/// contents, which are canonically ordered.
Result<std::vector<PatternMatch>> EvaluatePattern(Context* ctx,
                                                  const PatternSpec& spec,
                                                  const FiredWindow& window,
                                                  size_t num_tasks);

}  // namespace stream
}  // namespace stark

#endif  // STARK_STREAM_CEP_H_
