/// \file watermark.h
/// Event-time watermarks with bounded out-of-orderness, one tracker per
/// source. The watermark W is the promise "no future event has time < W":
/// with a disorder bound B, W = (max event time observed) - B. Observing is
/// a lock-free atomic max, so concurrent source threads can feed one
/// tracker and W never regresses (monotonicity is a test invariant).
#ifndef STARK_STREAM_WATERMARK_H_
#define STARK_STREAM_WATERMARK_H_

#include <atomic>
#include <cstdint>
#include <limits>

#include "temporal/interval.h"

namespace stark {
namespace stream {

/// Watermark value before any event has been observed.
inline constexpr Instant kMinWatermark = std::numeric_limits<Instant>::min();

/// \brief Per-source watermark generator (bounded out-of-orderness).
class WatermarkTracker {
 public:
  /// \p bound is the source's maximum disorder: an event may arrive up to
  /// `bound` ticks of event time behind the furthest event seen so far
  /// without being late.
  explicit WatermarkTracker(int64_t bound = 0) : bound_(bound < 0 ? 0 : bound) {}

  /// Folds one event time into the watermark (atomic max; thread-safe).
  void Observe(Instant event_time) {
    Instant seen = max_seen_.load(std::memory_order_relaxed);
    while (event_time > seen &&
           !max_seen_.compare_exchange_weak(seen, event_time,
                                            std::memory_order_acq_rel,
                                            std::memory_order_relaxed)) {
    }
  }

  /// Current watermark: max observed event time minus the disorder bound,
  /// or kMinWatermark before the first event. Monotone non-decreasing.
  Instant Current() const {
    const Instant seen = max_seen_.load(std::memory_order_acquire);
    if (seen == kMinWatermark) return kMinWatermark;
    return seen - bound_;
  }

  /// Highest event time observed so far (kMinWatermark when none), the
  /// numerator of the stream.watermark_lag_ms gauge.
  Instant MaxSeen() const { return max_seen_.load(std::memory_order_acquire); }

  int64_t bound() const { return bound_; }

 private:
  int64_t bound_;
  std::atomic<Instant> max_seen_{kMinWatermark};
};

}  // namespace stream
}  // namespace stark

#endif  // STARK_STREAM_WATERMARK_H_
