#include "stream/stream_context.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "engine/rdd.h"
#include "obs/metrics.h"

namespace stark {
namespace stream {

namespace {

obs::Counter* IngestedCounter() {
  static obs::Counter* const c =
      obs::DefaultMetrics().GetCounter("stream.events.ingested");
  return c;
}
obs::Counter* LateCounter() {
  static obs::Counter* const c =
      obs::DefaultMetrics().GetCounter("stream.events.late");
  return c;
}
obs::Counter* DroppedCounter() {
  static obs::Counter* const c =
      obs::DefaultMetrics().GetCounter("stream.events.dropped");
  return c;
}
obs::Counter* DuplicateCounter() {
  static obs::Counter* const c =
      obs::DefaultMetrics().GetCounter("stream.events.duplicate");
  return c;
}
obs::Counter* WindowsFiredCounter() {
  static obs::Counter* const c =
      obs::DefaultMetrics().GetCounter("stream.windows.fired");
  return c;
}

}  // namespace

StreamContext::StreamContext(Context* ctx, Options options)
    : ctx_(ctx), options_(std::move(options)),
      manager_(options_.window, options_.late_policy) {}

size_t StreamContext::AddSource(std::unique_ptr<StreamSource> source,
                                int64_t watermark_bound) {
  sources_.push_back(std::move(source));
  trackers_.push_back(std::make_unique<WatermarkTracker>(watermark_bound));
  return trackers_.size() - 1;
}

size_t StreamContext::AddExternalSource(int64_t watermark_bound) {
  sources_.push_back(nullptr);
  trackers_.push_back(std::make_unique<WatermarkTracker>(watermark_bound));
  return trackers_.size() - 1;
}

void StreamContext::SetSink(std::function<void(const WindowResult&)> sink) {
  sink_ = std::move(sink);
}

Instant StreamContext::IngestWatermark() const {
  Instant combined = std::numeric_limits<Instant>::max();
  if (trackers_.empty()) return kMinWatermark;
  for (const auto& tracker : trackers_) {
    combined = std::min(combined, tracker->Current());
  }
  return combined;
}

Instant StreamContext::CombinedWatermark() const {
  Instant combined = std::numeric_limits<Instant>::max();
  bool any_live = false;
  for (size_t i = 0; i < trackers_.size(); ++i) {
    // An exhausted source emits nothing further: its disorder bound no
    // longer holds anything back, so it contributes +inf to the min.
    if (sources_[i] != nullptr && sources_[i]->Exhausted()) continue;
    any_live = true;
    combined = std::min(combined, trackers_[i]->Current());
  }
  if (!any_live) return std::numeric_limits<Instant>::max();
  return combined;
}

void StreamContext::Ingest(size_t source_idx, const StreamEvent& event) {
  // Late is judged against the watermark *before* this event advances it,
  // so an in-order event is never late against itself. A non-late event's
  // windows all end after this watermark, hence after every fired window:
  // accepted events are complete in all their windows, atomically.
  const Instant watermark = IngestWatermark();
  const WindowManager::IngestResult result = manager_.Ingest(event, watermark);
  trackers_[source_idx]->Observe(event.event_time());
  IngestedCounter()->Increment();
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.ingested;
  if (result.duplicate) {
    ++stats_.duplicates;
    DuplicateCounter()->Increment();
  } else if (result.late) {
    ++stats_.late;
    LateCounter()->Increment();
    if (options_.late_policy == LatePolicy::kSideOutput) {
      ++stats_.side_output;
    } else {
      ++stats_.dropped;
      DroppedCounter()->Increment();
    }
  } else {
    ++stats_.accepted;
  }
}

void StreamContext::UpdateWatermarkLag() {
  static obs::Gauge* const lag =
      obs::DefaultMetrics().GetGauge("stream.watermark_lag_ms");
  Instant max_seen = kMinWatermark;
  for (const auto& tracker : trackers_) {
    max_seen = std::max(max_seen, tracker->MaxSeen());
  }
  const Instant combined = CombinedWatermark();
  if (max_seen == kMinWatermark ||
      combined == std::numeric_limits<Instant>::max() ||
      combined == kMinWatermark) {
    lag->Set(0);
    return;
  }
  lag->Set(max_seen - combined);
}

Result<size_t> StreamContext::Step() {
  size_t polled = 0;
  for (size_t i = 0; i < sources_.size(); ++i) {
    if (sources_[i] == nullptr || sources_[i]->Exhausted()) continue;
    for (StreamEvent& event : sources_[i]->Poll(options_.poll_batch)) {
      Ingest(i, event);
      ++polled;
    }
  }
  STARK_RETURN_NOT_OK(FireReady());
  return polled;
}

Status StreamContext::FireReady() {
  UpdateWatermarkLag();
  for (FiredWindow& window : manager_.CollectRipe(CombinedWatermark())) {
    STARK_RETURN_NOT_OK(ExecuteWindow(std::move(window)));
  }
  return Status::OK();
}

Status StreamContext::Flush() {
  for (FiredWindow& window : manager_.Flush()) {
    STARK_RETURN_NOT_OK(ExecuteWindow(std::move(window)));
  }
  UpdateWatermarkLag();
  return Status::OK();
}

Status StreamContext::RunToCompletion() {
  while (!AllExhausted()) {
    STARK_ASSIGN_OR_RETURN(const size_t polled, Step());
    (void)polled;
  }
  // All sources drained: the combined watermark is +inf, so FireReady
  // executes everything up to the last occupied window; Flush is the
  // belt-and-braces pass for managers fed purely via Ingest().
  STARK_RETURN_NOT_OK(FireReady());
  return Flush();
}

bool StreamContext::AllExhausted() const {
  for (const auto& source : sources_) {
    if (source != nullptr && !source->Exhausted()) return false;
  }
  return true;
}

StreamStats StreamContext::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

std::vector<StreamEvent> StreamContext::TakeSideOutput() {
  return manager_.TakeSideOutput();
}

Status StreamContext::ExecuteWindow(FiredWindow window) {
  // Exactly-once ledger: the window manager's frontier only emits each
  // start once; a repeat here would be an engine-level replay bug and must
  // not reach the sink twice.
  if (!delivered_.insert(window.start).second) {
    return Status::UnknownError("stream: window " +
                                std::to_string(window.start) +
                                " fired twice");
  }
  WindowResult result;
  if (options_.pattern.has_value()) {
    STARK_ASSIGN_OR_RETURN(
        result.matches,
        EvaluatePattern(ctx_, *options_.pattern, window,
                        options_.tasks_per_window));
  } else {
    // No pattern: still materialize the window through a real engine job,
    // so deadline/retry/speculation coverage is identical either way.
    const size_t tasks = options_.tasks_per_window != 0
                             ? options_.tasks_per_window
                             : ctx_->default_parallelism();
    RDD<StreamEvent> rdd =
        MakeRDD(ctx_, window.events,
                std::max<size_t>(1, std::min(tasks,
                                             std::max<size_t>(
                                                 window.events.size(), 1))));
    const Result<size_t> count = rdd.TryCount();
    if (!count.ok()) return count.status();
  }
  result.window = std::move(window);
  delivered_order_.push_back(result.window.start);
  WindowsFiredCounter()->Increment();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.windows_fired;
    stats_.matches += result.matches.size();
  }
  if (sink_) sink_(result);
  return Status::OK();
}

}  // namespace stream
}  // namespace stark
