/// \file grid_partitioner.h
/// Fixed grid partitioner (§2.1): the data space is divided into a number
/// of intervals per dimension, yielding rectangular cells of equal size.
#ifndef STARK_PARTITION_GRID_PARTITIONER_H_
#define STARK_PARTITION_GRID_PARTITIONER_H_

#include <algorithm>
#include <string>
#include <vector>

#include "partition/partitioner.h"

namespace stark {

/// \brief Equal-size grid over a universe envelope.
class GridPartitioner final : public SpatialPartitioner {
 public:
  /// Divides \p universe into \p cells_x by \p cells_y cells. The universe
  /// must be non-empty and both cell counts >= 1.
  GridPartitioner(const Envelope& universe, size_t cells_x, size_t cells_y);

  /// Square grid convenience: \p cells_per_dim intervals per dimension.
  GridPartitioner(const Envelope& universe, size_t cells_per_dim)
      : GridPartitioner(universe, cells_per_dim, cells_per_dim) {}

  size_t NumPartitions() const override { return cells_x_ * cells_y_; }
  size_t PartitionFor(const Coordinate& c) const override;
  const Envelope& PartitionBounds(size_t i) const override {
    STARK_DCHECK(i < bounds_.size());
    return bounds_[i];
  }
  std::string Name() const override { return "grid"; }

  std::shared_ptr<SpatialPartitioner> Clone() const override {
    return std::shared_ptr<SpatialPartitioner>(new GridPartitioner(*this));
  }

  size_t cells_x() const { return cells_x_; }
  size_t cells_y() const { return cells_y_; }
  const Envelope& universe() const { return universe_; }

  /// Grid cell coordinates of partition \p i.
  std::pair<size_t, size_t> CellOf(size_t i) const {
    return {i % cells_x_, i / cells_x_};
  }

 private:
  Envelope universe_;
  size_t cells_x_;
  size_t cells_y_;
  double cell_w_;
  double cell_h_;
  std::vector<Envelope> bounds_;
};

}  // namespace stark

#endif  // STARK_PARTITION_GRID_PARTITIONER_H_
