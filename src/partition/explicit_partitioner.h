/// \file explicit_partitioner.h
/// A partitioner defined by an explicit list of partition bounds — used
/// when spatially partitioned data is loaded back from disk (Figure 2's
/// "store to HDFS" / "load from HDFS" cycle): the original grid/BSP object
/// is gone, but its bounds and extents survive in the stored metadata.
#ifndef STARK_PARTITION_EXPLICIT_PARTITIONER_H_
#define STARK_PARTITION_EXPLICIT_PARTITIONER_H_

#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "partition/partitioner.h"

namespace stark {

/// \brief Partitioner backed by a stored bounds list. Assignment routes a
/// centroid to the first partition whose bounds contain it, falling back to
/// the nearest bounds — so re-partitioning loaded data stays total even for
/// out-of-universe points.
class ExplicitPartitioner final : public SpatialPartitioner {
 public:
  /// \p bounds must be non-empty; \p extents must be empty (extents start
  /// at bounds) or match bounds in size.
  ExplicitPartitioner(std::vector<Envelope> bounds,
                      const std::vector<Envelope>& extents)
      : bounds_(std::move(bounds)) {
    STARK_CHECK(!bounds_.empty());
    STARK_CHECK(extents.empty() || extents.size() == bounds_.size());
    InitExtents();
    for (size_t i = 0; i < extents.size(); ++i) {
      GrowExtent(i, extents[i]);
    }
  }

  size_t NumPartitions() const override { return bounds_.size(); }

  size_t PartitionFor(const Coordinate& c) const override {
    size_t nearest = 0;
    double nearest_dist = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < bounds_.size(); ++i) {
      const double d = bounds_[i].Distance(c);
      if (d == 0.0) return i;
      if (d < nearest_dist) {
        nearest_dist = d;
        nearest = i;
      }
    }
    return nearest;
  }

  const Envelope& PartitionBounds(size_t i) const override {
    STARK_DCHECK(i < bounds_.size());
    return bounds_[i];
  }

  std::string Name() const override { return "explicit"; }

  std::shared_ptr<SpatialPartitioner> Clone() const override {
    return std::shared_ptr<SpatialPartitioner>(new ExplicitPartitioner(*this));
  }

 private:
  ExplicitPartitioner(const ExplicitPartitioner&) = default;

  std::vector<Envelope> bounds_;
};

}  // namespace stark

#endif  // STARK_PARTITION_EXPLICIT_PARTITIONER_H_
