#include "partition/st_grid_partitioner.h"

namespace stark {

SpatioTemporalGridPartitioner::SpatioTemporalGridPartitioner(
    const Envelope& universe, size_t cells_per_dim, Instant time_min,
    Instant time_max, size_t time_buckets)
    : spatial_(universe, cells_per_dim), time_buckets_(time_buckets),
      time_min_(time_min), time_max_(time_max) {
  STARK_CHECK(time_buckets >= 1);
  STARK_CHECK(time_min <= time_max);
  bucket_bounds_.reserve(time_buckets_);
  const int64_t span = time_max_ - time_min_;
  for (size_t b = 0; b < time_buckets_; ++b) {
    const Instant lo =
        time_min_ + span * static_cast<int64_t>(b) /
                        static_cast<int64_t>(time_buckets_);
    const Instant hi =
        b + 1 == time_buckets_
            ? time_max_
            : time_min_ + span * static_cast<int64_t>(b + 1) /
                              static_cast<int64_t>(time_buckets_);
    bucket_bounds_.emplace_back(lo, hi);
  }
  InitExtents();
}

size_t SpatioTemporalGridPartitioner::BucketOf(Instant t) const {
  if (t <= time_min_) return 0;
  if (t >= time_max_) return time_buckets_ - 1;
  const int64_t span = time_max_ - time_min_;
  if (span == 0) return 0;
  const size_t bucket = static_cast<size_t>(
      static_cast<int64_t>(time_buckets_) * (t - time_min_) / span);
  return std::min(bucket, time_buckets_ - 1);
}

}  // namespace stark
