/// \file bsp_partitioner.h
/// Cost-based binary space partitioner (§2.1, after MR-DBSCAN [1]): the
/// space is recursively split into two halves of (approximately) equal cost
/// — the number of contained items — until a partition's cost drops below a
/// threshold or its side length reaches a granularity minimum. Dense
/// regions therefore end up with many small partitions while sparse regions
/// stay coarse, fixing the skew problem of the fixed grid.
#ifndef STARK_PARTITION_BSP_PARTITIONER_H_
#define STARK_PARTITION_BSP_PARTITIONER_H_

#include <memory>
#include <string>
#include <vector>

#include "partition/partitioner.h"

namespace stark {

/// \brief Cost-based binary space partitioning over a set of sample
/// centroids.
class BSPartitioner final : public SpatialPartitioner {
 public:
  /// Tuning parameters for the recursive split.
  struct Options {
    /// Split a region whenever it holds more than this many items.
    size_t max_cost = 10'000;
    /// Never split a region whose longer side is <= 2 * min_side_length
    /// (so each half keeps at least the minimum side length).
    double min_side_length = 1e-6;
  };

  /// Builds the partitioner from item centroids (a sample is fine) over the
  /// given universe. \p universe must cover all centroids ever passed to
  /// PartitionFor for balanced results (others are routed to the nearest
  /// leaf).
  BSPartitioner(const Envelope& universe,
                const std::vector<Coordinate>& centroids,
                const Options& options);

  size_t NumPartitions() const override { return leaves_.size(); }
  size_t PartitionFor(const Coordinate& c) const override;
  const Envelope& PartitionBounds(size_t i) const override {
    STARK_DCHECK(i < leaves_.size());
    return leaves_[i];
  }
  std::string Name() const override { return "bsp"; }

  /// Shares the (immutable) split tree with the clone; only the extents are
  /// duplicated.
  std::shared_ptr<SpatialPartitioner> Clone() const override {
    return std::shared_ptr<SpatialPartitioner>(new BSPartitioner(*this));
  }

  const Options& options() const { return options_; }

 private:
  struct Node {
    Envelope box;
    // Interior node: split along `dim` (0 = x, 1 = y) at `at`.
    int dim = -1;
    double at = 0.0;
    std::unique_ptr<Node> lo;
    std::unique_ptr<Node> hi;
    // Leaf: index into leaves_.
    size_t leaf_id = 0;
    bool IsLeaf() const { return dim < 0; }
  };

  BSPartitioner(const BSPartitioner&) = default;

  std::unique_ptr<Node> Build(const Envelope& box,
                              std::vector<Coordinate>* items);

  Options options_;
  std::shared_ptr<const Node> root_;  // shared between clones, never mutated
  std::vector<Envelope> leaves_;
};

}  // namespace stark

#endif  // STARK_PARTITION_BSP_PARTITIONER_H_
