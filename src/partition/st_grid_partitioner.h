/// \file st_grid_partitioner.h
/// Spatio-temporal grid partitioner: the extension the paper leaves as
/// future work ("in its current version, STARK only considers the spatial
/// component for partitioning"). Partitions are a spatial grid crossed with
/// equal-width time buckets, so a query with a temporal window prunes both
/// by extent and by time.
#ifndef STARK_PARTITION_ST_GRID_PARTITIONER_H_
#define STARK_PARTITION_ST_GRID_PARTITIONER_H_

#include <string>
#include <vector>

#include "partition/grid_partitioner.h"

namespace stark {

/// \brief Grid over space x time. Partition ids are laid out as
/// spatial_cell * time_buckets + time_bucket. Objects without a temporal
/// component land in bucket 0 of their spatial cell (they can never match
/// a temporally-qualified query, so time pruning remains exact).
class SpatioTemporalGridPartitioner final : public SpatialPartitioner {
 public:
  /// \p universe and \p cells_per_dim define the spatial grid; the time
  /// axis [time_min, time_max] is split into \p time_buckets equal buckets.
  SpatioTemporalGridPartitioner(const Envelope& universe, size_t cells_per_dim,
                                Instant time_min, Instant time_max,
                                size_t time_buckets);

  size_t NumPartitions() const override {
    return spatial_.NumPartitions() * time_buckets_;
  }

  /// Spatial-only assignment: bucket 0 of the spatial cell.
  size_t PartitionFor(const Coordinate& c) const override {
    return spatial_.PartitionFor(c) * time_buckets_;
  }

  size_t PartitionForST(
      const Coordinate& c,
      const std::optional<TemporalInterval>& time) const override {
    const size_t bucket = time.has_value() ? BucketOf(time->Center()) : 0;
    return spatial_.PartitionFor(c) * time_buckets_ + bucket;
  }

  const Envelope& PartitionBounds(size_t i) const override {
    return spatial_.PartitionBounds(i / time_buckets_);
  }

  std::optional<TemporalInterval> PartitionTimeBounds(size_t i) const override {
    const size_t bucket = i % time_buckets_;
    return bucket_bounds_[bucket];
  }

  std::string Name() const override { return "st-grid"; }

  std::shared_ptr<SpatialPartitioner> Clone() const override {
    return std::shared_ptr<SpatialPartitioner>(
        new SpatioTemporalGridPartitioner(*this));
  }

  size_t time_buckets() const { return time_buckets_; }

  /// Time bucket index for an instant (clamped into range).
  size_t BucketOf(Instant t) const;

 private:
  GridPartitioner spatial_;
  size_t time_buckets_;
  Instant time_min_;
  Instant time_max_;
  std::vector<TemporalInterval> bucket_bounds_;
};

}  // namespace stark

#endif  // STARK_PARTITION_ST_GRID_PARTITIONER_H_
