#include "partition/grid_partitioner.h"

namespace stark {

GridPartitioner::GridPartitioner(const Envelope& universe, size_t cells_x,
                                 size_t cells_y)
    : universe_(universe), cells_x_(cells_x), cells_y_(cells_y) {
  STARK_CHECK(!universe.IsEmpty());
  STARK_CHECK(cells_x >= 1 && cells_y >= 1);
  cell_w_ = universe.Width() / static_cast<double>(cells_x_);
  cell_h_ = universe.Height() / static_cast<double>(cells_y_);
  bounds_.reserve(cells_x_ * cells_y_);
  for (size_t cy = 0; cy < cells_y_; ++cy) {
    for (size_t cx = 0; cx < cells_x_; ++cx) {
      const double x0 = universe.min_x() + static_cast<double>(cx) * cell_w_;
      const double y0 = universe.min_y() + static_cast<double>(cy) * cell_h_;
      bounds_.emplace_back(x0, y0, x0 + cell_w_, y0 + cell_h_);
    }
  }
  InitExtents();
}

size_t GridPartitioner::PartitionFor(const Coordinate& c) const {
  // Clamp out-of-universe centroids into the border cells so that every
  // object receives a partition (Spark partitioners must be total).
  auto cell_index = [](double v, double lo, double width, size_t count) {
    if (width <= 0.0) return size_t{0};
    double idx = (v - lo) / width;
    if (idx < 0.0) idx = 0.0;
    const size_t max_cell = count - 1;
    const size_t cell = static_cast<size_t>(idx);
    return std::min(cell, max_cell);
  };
  const size_t cx = cell_index(c.x, universe_.min_x(), cell_w_, cells_x_);
  const size_t cy = cell_index(c.y, universe_.min_y(), cell_h_, cells_y_);
  return cy * cells_x_ + cx;
}

}  // namespace stark
