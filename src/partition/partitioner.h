/// \file partitioner.h
/// Spatial partitioner interface (§2.1). A partitioner assigns each
/// spatio-temporal object to exactly ONE partition based on its centroid;
/// per-partition *bounds* describe the assignment cells while *extents*
/// additionally cover the full envelopes of the assigned objects (the
/// paper's "additional extent information"), enabling correct partition
/// pruning for non-point geometries without replication.
#ifndef STARK_PARTITION_PARTITIONER_H_
#define STARK_PARTITION_PARTITIONER_H_

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/macros.h"
#include "geometry/envelope.h"
#include "temporal/interval.h"

namespace stark {

/// \brief Base class of STARK's spatial partitioners.
///
/// Mirrors Spark's `Partitioner` contract (stable element -> partition id
/// mapping) extended with spatial metadata. GrowExtent is thread-safe so a
/// parallel shuffle can update extents concurrently.
class SpatialPartitioner {
 public:
  virtual ~SpatialPartitioner() = default;

  /// Total number of partitions produced.
  virtual size_t NumPartitions() const = 0;

  /// Partition id for an object whose centroid is \p c. Must be <
  /// NumPartitions() for any coordinate (out-of-universe points are clamped
  /// into the nearest cell).
  virtual size_t PartitionFor(const Coordinate& c) const = 0;

  /// The assignment cell of partition \p i (non-overlapping).
  virtual const Envelope& PartitionBounds(size_t i) const = 0;

  /// Human-readable partitioner name for logs and benchmark labels.
  virtual std::string Name() const = 0;

  /// \brief Copy of this partitioner with the *same* assignment structure
  /// and an independent set of extents.
  ///
  /// SpatialRDD::PartitionBy clones the partitioner it is given (and resets
  /// the clone's extents) before growing extents during the shuffle, so one
  /// partitioner instance can be reused for several datasets without the
  /// first shuffle's extent growth leaking into the next and defeating
  /// pruning. Immutable assignment structure (grids, BSP trees) may be
  /// shared between clones; only the extents are per-clone state.
  virtual std::shared_ptr<SpatialPartitioner> Clone() const = 0;

  /// Spatio-temporal assignment hook. The paper notes that "in its current
  /// version, STARK only considers the spatial component for partitioning";
  /// this default implements exactly that, and the spatio-temporal grid
  /// partitioner overrides it to bucket by time as well.
  virtual size_t PartitionForST(
      const Coordinate& c, const std::optional<TemporalInterval>& time) const {
    (void)time;
    return PartitionFor(c);
  }

  /// Temporal validity of partition \p i, when the partitioner buckets by
  /// time; nullopt means temporally unbounded (never pruned by time). A
  /// query *with* a temporal component may skip partitions whose time
  /// bounds cannot intersect it — objects without time never match such a
  /// query anyway (formula (1)-(3)), so the pruning stays exact.
  virtual std::optional<TemporalInterval> PartitionTimeBounds(size_t i) const {
    (void)i;
    return std::nullopt;
  }

  /// The adjusted extent of partition \p i: cell bounds expanded by every
  /// assigned object's envelope. Extents may overlap (paper §2.1).
  const Envelope& PartitionExtent(size_t i) const {
    STARK_DCHECK(i < extents_.size());
    return extents_[i];
  }

  /// Expands partition \p i's extent to cover \p env. Thread-safe.
  void GrowExtent(size_t i, const Envelope& env) {
    std::lock_guard<std::mutex> lock(extent_mu_);
    STARK_DCHECK(i < extents_.size());
    extents_[i].ExpandToInclude(env);
  }

  /// Resets every extent back to its assignment bounds, discarding all
  /// GrowExtent history. Must not race with a concurrent shuffle.
  void ResetExtents() {
    std::lock_guard<std::mutex> lock(extent_mu_);
    extents_.clear();
    extents_.reserve(NumPartitions());
    for (size_t i = 0; i < NumPartitions(); ++i) {
      extents_.push_back(PartitionBounds(i));
    }
  }

  /// Ids of all partitions whose *bounds* lie within \p eps of \p c; used
  /// by the distributed DBSCAN border replication step.
  std::vector<size_t> PartitionsWithinDistance(const Coordinate& c,
                                               double eps) const {
    std::vector<size_t> out;
    for (size_t i = 0; i < NumPartitions(); ++i) {
      if (PartitionBounds(i).Distance(c) <= eps) out.push_back(i);
    }
    return out;
  }

 protected:
  SpatialPartitioner() = default;

  /// Copying duplicates the extents (the mutex is per-instance); used by
  /// the subclasses' Clone() implementations.
  SpatialPartitioner(const SpatialPartitioner& other)
      : extents_(other.extents_) {}
  SpatialPartitioner& operator=(const SpatialPartitioner&) = delete;

  /// Subclasses call this once their bounds are final to seed the extents.
  void InitExtents() {
    extents_.clear();
    extents_.reserve(NumPartitions());
    for (size_t i = 0; i < NumPartitions(); ++i) {
      extents_.push_back(PartitionBounds(i));
    }
  }

 private:
  std::vector<Envelope> extents_;
  mutable std::mutex extent_mu_;
};

}  // namespace stark

#endif  // STARK_PARTITION_PARTITIONER_H_
