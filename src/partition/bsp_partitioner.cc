#include "partition/bsp_partitioner.h"

#include <algorithm>

namespace stark {

BSPartitioner::BSPartitioner(const Envelope& universe,
                             const std::vector<Coordinate>& centroids,
                             const Options& options)
    : options_(options) {
  STARK_CHECK(!universe.IsEmpty());
  STARK_CHECK(options.max_cost >= 1);
  std::vector<Coordinate> items = centroids;
  root_ = Build(universe, &items);
  InitExtents();
}

std::unique_ptr<BSPartitioner::Node> BSPartitioner::Build(
    const Envelope& box, std::vector<Coordinate>* items) {
  auto node = std::make_unique<Node>();
  node->box = box;

  const double longer_side = std::max(box.Width(), box.Height());
  const bool splittable =
      items->size() > options_.max_cost &&
      longer_side > 2.0 * options_.min_side_length;
  if (!splittable) {
    node->leaf_id = leaves_.size();
    leaves_.push_back(box);
    return node;
  }

  // Split perpendicular to the longer side at the cost median, so the two
  // halves carry (approximately) equal cost.
  const int dim = box.Width() >= box.Height() ? 0 : 1;
  const size_t mid = items->size() / 2;
  std::nth_element(items->begin(), items->begin() + mid, items->end(),
                   [dim](const Coordinate& a, const Coordinate& b) {
                     return dim == 0 ? a.x < b.x : a.y < b.y;
                   });
  double at = dim == 0 ? (*items)[mid].x : (*items)[mid].y;
  // Keep the split strictly inside the box and honor the granularity
  // threshold on both sides.
  const double lo_edge =
      (dim == 0 ? box.min_x() : box.min_y()) + options_.min_side_length;
  const double hi_edge =
      (dim == 0 ? box.max_x() : box.max_y()) - options_.min_side_length;
  at = std::clamp(at, lo_edge, hi_edge);

  std::vector<Coordinate> lo_items;
  std::vector<Coordinate> hi_items;
  lo_items.reserve(mid + 1);
  hi_items.reserve(items->size() - mid);
  for (const Coordinate& c : *items) {
    const double v = dim == 0 ? c.x : c.y;
    (v < at ? lo_items : hi_items).push_back(c);
  }
  items->clear();
  items->shrink_to_fit();

  // A degenerate split (all items on one side, e.g. identical coordinates)
  // cannot make progress; stop and emit a leaf.
  if (lo_items.empty() || hi_items.empty()) {
    node->leaf_id = leaves_.size();
    leaves_.push_back(box);
    return node;
  }

  node->dim = dim;
  node->at = at;
  Envelope lo_box;
  Envelope hi_box;
  if (dim == 0) {
    lo_box = Envelope(box.min_x(), box.min_y(), at, box.max_y());
    hi_box = Envelope(at, box.min_y(), box.max_x(), box.max_y());
  } else {
    lo_box = Envelope(box.min_x(), box.min_y(), box.max_x(), at);
    hi_box = Envelope(box.min_x(), at, box.max_x(), box.max_y());
  }
  node->lo = Build(lo_box, &lo_items);
  node->hi = Build(hi_box, &hi_items);
  return node;
}

size_t BSPartitioner::PartitionFor(const Coordinate& c) const {
  const Node* node = root_.get();
  while (!node->IsLeaf()) {
    const double v = node->dim == 0 ? c.x : c.y;
    node = v < node->at ? node->lo.get() : node->hi.get();
  }
  return node->leaf_id;
}

}  // namespace stark
