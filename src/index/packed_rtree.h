/// \file packed_rtree.h
/// Flat, cache-resident R-tree in the STR/flatbush tradition: the whole tree
/// is bulk-loaded once into contiguous structure-of-arrays storage and never
/// mutated. Nodes are four parallel double arrays (min_x/min_y/max_x/max_y)
/// plus a [begin,end) child-range pair — no per-node heap allocation, no
/// parent/child pointers — and traversal is an iterative explicit stack, so
/// a probe touches a handful of dense cache lines instead of pointer-chasing
/// unique_ptr nodes. Visitor and kNN APIs are templated: there is no
/// std::function indirection anywhere on the traversal path.
///
/// Build one directly from entries (STR bulk load, same tiling as
/// RTree::BulkLoad) or freeze an incrementally built RTree via
/// RTree::Freeze(). See docs/PERFORMANCE.md for the layout diagram.
#ifndef STARK_INDEX_PACKED_RTREE_H_
#define STARK_INDEX_PACKED_RTREE_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <queue>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "geometry/envelope.h"
#include "geometry/kernels.h"

namespace stark {

/// \brief Immutable packed R-tree over (Envelope, T) entries.
///
/// Layout: entries are stored in STR order in an EnvelopeSoA plus a parallel
/// values array. Nodes of all levels live in one flat SoA, leaves first and
/// the root last; node `i` is a leaf iff `i < num_leaf_nodes()`. A leaf's
/// [begin,end) range indexes the entry arrays; an interior node's range
/// indexes the node arrays (children are contiguous by construction).
///
/// Like the classic RTree, queries yield *candidates* whose bounding boxes
/// match; callers refine with the exact predicate.
template <typename T>
class PackedRTree {
 public:
  /// Creates an empty tree (no entries, queries yield nothing).
  PackedRTree() = default;

  /// STR bulk load with node capacity \p order (>= 2). Uses the same
  /// sort-tile-recursive tiling as RTree::BulkLoad, so the leaf composition
  /// matches the classic tree built from the same entries.
  PackedRTree(size_t order, std::vector<std::pair<Envelope, T>> entries)
      : order_(std::max<size_t>(order, 2)) {
    Build(std::move(entries));
  }

  PackedRTree(PackedRTree&&) noexcept = default;
  PackedRTree& operator=(PackedRTree&&) noexcept = default;
  STARK_DISALLOW_COPY_AND_ASSIGN(PackedRTree);

  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  size_t order() const { return order_; }
  size_t num_nodes() const { return nodes_.size(); }
  size_t num_leaf_nodes() const { return num_leaf_nodes_; }

  /// Bounding box of everything in the tree (empty envelope when empty).
  const Envelope& bounds() const { return bounds_; }

  /// Depth in levels (1 for a tree whose root is a leaf); matches
  /// RTree::Depth for the same entry set.
  size_t Depth() const { return levels_ == 0 ? 1 : levels_; }

  /// Invokes `visit(const Envelope&, const T&)` for every entry whose
  /// envelope intersects \p query. Iterative explicit-stack traversal; leaf
  /// entry ranges go through the branchless FilterEnvelopesBatch kernel.
  template <typename Visitor>
  void Query(const Envelope& query, Visitor&& visit) const {
    if (nodes_.empty() || query.IsEmpty()) return;
    const double qmin_x = query.min_x();
    const double qmin_y = query.min_y();
    const double qmax_x = query.max_x();
    const double qmax_y = query.max_y();
    if (nodes_.min_x[root_] > qmax_x || nodes_.max_x[root_] < qmin_x ||
        nodes_.min_y[root_] > qmax_y || nodes_.max_y[root_] < qmin_y) {
      return;
    }

    // Stack + leaf-hit scratch on the call stack for the common case; a
    // heap fallback keeps absurd orders correct.
    uint32_t stack_buf[kScratch];
    uint32_t hits_buf[kScratch];
    std::vector<uint32_t> stack_heap, hits_heap;
    uint32_t* stack = stack_buf;
    uint32_t* hits = hits_buf;
    if (stack_bound_ > kScratch) {
      stack_heap.resize(stack_bound_);
      stack = stack_heap.data();
    }
    if (order_ > kScratch) {
      hits_heap.resize(order_);
      hits = hits_heap.data();
    }

    size_t top = 0;
    stack[top++] = root_;
    while (top > 0) {
      const uint32_t ni = stack[--top];
      const uint32_t begin = node_begin_[ni];
      const uint32_t end = node_end_[ni];
      if (ni < num_leaf_nodes_) {
        const size_t n = FilterEnvelopesBatch(
            entries_.min_x.data() + begin, entries_.min_y.data() + begin,
            entries_.max_x.data() + begin, entries_.max_y.data() + begin,
            end - begin, qmin_x, qmin_y, qmax_x, qmax_y, hits);
        for (size_t h = 0; h < n; ++h) {
          const uint32_t e = begin + hits[h];
          visit(entries_.Get(e), values_[e]);
        }
      } else {
        for (uint32_t c = begin; c < end; ++c) {
          const bool hit = !(nodes_.min_x[c] > qmax_x) &
                           !(nodes_.max_x[c] < qmin_x) &
                           !(nodes_.min_y[c] > qmax_y) &
                           !(nodes_.max_y[c] < qmin_y);
          stack[top] = c;
          top += static_cast<size_t>(hit);
        }
      }
    }
  }

  /// Collects pointers to all candidate values for \p query.
  std::vector<const T*> QueryCandidates(const Envelope& query) const {
    std::vector<const T*> out;
    Query(query, [&out](const Envelope&, const T& v) { out.push_back(&v); });
    return out;
  }

  /// Invokes `visit(const Envelope&, const T&)` on every entry (STR storage
  /// order).
  template <typename Visitor>
  void ForEach(Visitor&& visit) const {
    for (size_t e = 0; e < values_.size(); ++e) {
      visit(entries_.Get(e), values_[e]);
    }
  }

  /// \brief Exact k-nearest-neighbor search (branch and bound).
  ///
  /// Same contract as RTree::Knn: \p exact_distance computes the true
  /// distance from the query to an entry's value and must never be smaller
  /// than the distance to the entry's envelope.
  template <typename DistFn>
  std::vector<std::pair<double, const T*>> Knn(
      const Coordinate& query, size_t k, DistFn&& exact_distance) const {
    std::vector<std::pair<double, const T*>> result;
    if (k == 0 || values_.empty()) return result;

    struct QueueItem {
      double dist;
      uint32_t index;  // node index, or entry index when is_entry
      bool is_entry;
      bool operator>(const QueueItem& o) const { return dist > o.dist; }
    };
    std::priority_queue<QueueItem, std::vector<QueueItem>,
                        std::greater<QueueItem>>
        pq;
    pq.push({NodeDistance(root_, query), root_, false});

    while (!pq.empty() && result.size() < k) {
      const QueueItem item = pq.top();
      pq.pop();
      if (item.is_entry) {
        // Entries carry their exact distance, so popping one means no
        // unexplored node/entry can be closer.
        result.emplace_back(item.dist, &values_[item.index]);
        continue;
      }
      const uint32_t begin = node_begin_[item.index];
      const uint32_t end = node_end_[item.index];
      if (item.index < num_leaf_nodes_) {
        for (uint32_t e = begin; e < end; ++e) {
          pq.push({exact_distance(values_[e]), e, true});
        }
      } else {
        for (uint32_t c = begin; c < end; ++c) {
          pq.push({NodeDistance(c, query), c, false});
        }
      }
    }
    return result;
  }

 private:
  static constexpr size_t kScratch = 512;

  double NodeDistance(uint32_t ni, const Coordinate& c) const {
    // Same arithmetic as Envelope::Distance(Coordinate); the max-with-0
    // form already yields 0 for contained points.
    const double dx = std::max({nodes_.min_x[ni] - c.x, 0.0,
                                c.x - nodes_.max_x[ni]});
    const double dy = std::max({nodes_.min_y[ni] - c.y, 0.0,
                                c.y - nodes_.max_y[ni]});
    return std::sqrt(dx * dx + dy * dy);
  }

  /// One node record during construction, before flattening.
  struct BuildRec {
    Envelope env;
    uint32_t begin;
    uint32_t end;
  };

  void AppendLevel(const std::vector<BuildRec>& recs) {
    for (const BuildRec& r : recs) {
      nodes_.PushBack(r.env);
      node_begin_.push_back(r.begin);
      node_end_.push_back(r.end);
    }
    ++levels_;
  }

  void Build(std::vector<std::pair<Envelope, T>> entries) {
    if (entries.empty()) return;

    // STR tiling, mirroring RTree::BulkLoad: x-sort, sqrt(leaf_count)
    // vertical slices, y-sort within each slice, chunk into leaves.
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) {
                return a.first.Center().x < b.first.Center().x;
              });
    const size_t leaf_count = (entries.size() + order_ - 1) / order_;
    const size_t slice_count = static_cast<size_t>(
        std::ceil(std::sqrt(static_cast<double>(leaf_count))));
    const size_t slice_size =
        (entries.size() + slice_count - 1) / slice_count;

    std::vector<BuildRec> level;
    level.reserve(leaf_count);
    entries_.Reserve(entries.size());
    values_.reserve(entries.size());
    for (size_t s = 0; s < entries.size(); s += slice_size) {
      const size_t s_end = std::min(s + slice_size, entries.size());
      std::sort(entries.begin() + s, entries.begin() + s_end,
                [](const auto& a, const auto& b) {
                  return a.first.Center().y < b.first.Center().y;
                });
      for (size_t i = s; i < s_end; i += order_) {
        const size_t i_end = std::min(i + order_, s_end);
        BuildRec leaf{Envelope(), static_cast<uint32_t>(values_.size()), 0};
        for (size_t j = i; j < i_end; ++j) {
          leaf.env.ExpandToInclude(entries[j].first);
          entries_.PushBack(entries[j].first);
          values_.push_back(std::move(entries[j].second));
        }
        leaf.end = static_cast<uint32_t>(values_.size());
        level.push_back(std::move(leaf));
      }
    }
    num_leaf_nodes_ = static_cast<uint32_t>(level.size());

    // Pack upper levels: each level is sorted by envelope center x (as in
    // RTree::BulkLoad), appended to the flat arrays, then chunked into
    // parents whose child ranges are absolute node indices.
    while (level.size() > 1) {
      std::sort(level.begin(), level.end(),
                [](const BuildRec& a, const BuildRec& b) {
                  return a.env.Center().x < b.env.Center().x;
                });
      const uint32_t base = static_cast<uint32_t>(nodes_.size());
      AppendLevel(level);
      std::vector<BuildRec> next;
      next.reserve((level.size() + order_ - 1) / order_);
      for (size_t i = 0; i < level.size(); i += order_) {
        const size_t i_end = std::min(i + order_, level.size());
        BuildRec parent{Envelope(), base + static_cast<uint32_t>(i),
                        base + static_cast<uint32_t>(i_end)};
        for (size_t j = i; j < i_end; ++j) {
          parent.env.ExpandToInclude(level[j].env);
        }
        next.push_back(std::move(parent));
      }
      level = std::move(next);
    }
    AppendLevel(level);
    root_ = static_cast<uint32_t>(nodes_.size() - 1);
    bounds_ = level.front().env;
    // An interior node pushes at most `order_` children per pop; with L
    // levels the stack never holds more than (L-1)*order_ + 1 nodes.
    stack_bound_ = 1 + (levels_ > 0 ? (levels_ - 1) * order_ : 0);
  }

  size_t order_ = 2;
  size_t levels_ = 0;
  size_t stack_bound_ = 1;
  uint32_t num_leaf_nodes_ = 0;
  uint32_t root_ = 0;
  Envelope bounds_;

  EnvelopeSoA entries_;            // entry envelopes, STR order
  std::vector<T> values_;          // parallel to entries_
  EnvelopeSoA nodes_;              // all levels, leaves first, root last
  std::vector<uint32_t> node_begin_;  // leaf: entry range; interior: nodes
  std::vector<uint32_t> node_end_;
};

}  // namespace stark

#endif  // STARK_INDEX_PACKED_RTREE_H_
