/// \file rtree.h
/// R-tree index over (Envelope, T) entries, mirroring the JTS STRtree that
/// STARK uses for partition-local indexing (§2.2). Supports incremental
/// insertion (live indexing), Sort-Tile-Recursive bulk loading (persistent
/// indexing / baselines), envelope queries and branch-and-bound kNN.
#ifndef STARK_INDEX_RTREE_H_
#define STARK_INDEX_RTREE_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "geometry/envelope.h"
#include "index/packed_rtree.h"

namespace stark {

/// \brief R-tree with a configurable order (maximum children per node),
/// matching the `order` parameter of STARK's liveIndex/index calls.
///
/// Queries return *candidates* whose bounding boxes match; callers must
/// refine candidates with the exact predicate (the paper's candidate
/// pruning step).
template <typename T>
class RTree {
 public:
  /// Creates an empty tree. \p order must be >= 2; it is the maximum number
  /// of entries/children per node (JTS STRtree node capacity).
  explicit RTree(size_t order = 10) : order_(std::max<size_t>(order, 2)) {
    root_ = std::make_unique<Node>(/*leaf=*/true);
  }

  RTree(RTree&&) noexcept = default;
  RTree& operator=(RTree&&) noexcept = default;
  STARK_DISALLOW_COPY_AND_ASSIGN(RTree);

  /// Number of indexed entries.
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t order() const { return order_; }

  /// Bounding box of everything in the tree.
  const Envelope& bounds() const { return root_->env; }

  /// Inserts one entry (classic R-tree insert with quadratic split).
  void Insert(const Envelope& env, T value) {
    Node* leaf = ChooseLeaf(root_.get(), env);
    leaf->entries.push_back(Entry{env, std::move(value)});
    ++size_;
    // Grow every ancestor by exactly the new envelope *before* splitting:
    // each was the tight union of its subtree, so the grown envelope is the
    // tight union again, and splits below only repartition that union.
    for (Node* n = leaf; n != nullptr; n = n->parent) {
      n->env.ExpandToInclude(env);
    }
    HandleOverflow(leaf);
  }

  /// Bulk-loads entries with the Sort-Tile-Recursive algorithm. Replaces
  /// the current contents.
  void BulkLoad(std::vector<std::pair<Envelope, T>> entries) {
    size_ = entries.size();
    if (entries.empty()) {
      root_ = std::make_unique<Node>(/*leaf=*/true);
      return;
    }
    // Build leaves over x-sorted vertical slices, each y-sorted.
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) {
                return a.first.Center().x < b.first.Center().x;
              });
    const size_t leaf_count =
        (entries.size() + order_ - 1) / order_;
    const size_t slice_count = static_cast<size_t>(
        std::ceil(std::sqrt(static_cast<double>(leaf_count))));
    const size_t slice_size =
        (entries.size() + slice_count - 1) / slice_count;

    std::vector<std::unique_ptr<Node>> level;
    for (size_t s = 0; s < entries.size(); s += slice_size) {
      const size_t s_end = std::min(s + slice_size, entries.size());
      std::sort(entries.begin() + s, entries.begin() + s_end,
                [](const auto& a, const auto& b) {
                  return a.first.Center().y < b.first.Center().y;
                });
      for (size_t i = s; i < s_end; i += order_) {
        const size_t i_end = std::min(i + order_, s_end);
        auto leaf = std::make_unique<Node>(/*leaf=*/true);
        for (size_t j = i; j < i_end; ++j) {
          leaf->env.ExpandToInclude(entries[j].first);
          leaf->entries.push_back(
              Entry{entries[j].first, std::move(entries[j].second)});
        }
        level.push_back(std::move(leaf));
      }
    }
    // Pack upper levels until a single root remains.
    while (level.size() > 1) {
      std::vector<std::unique_ptr<Node>> next;
      std::sort(level.begin(), level.end(), [](const auto& a, const auto& b) {
        return a->env.Center().x < b->env.Center().x;
      });
      for (size_t i = 0; i < level.size(); i += order_) {
        const size_t i_end = std::min(i + order_, level.size());
        auto parent = std::make_unique<Node>(/*leaf=*/false);
        for (size_t j = i; j < i_end; ++j) {
          parent->env.ExpandToInclude(level[j]->env);
          level[j]->parent = parent.get();
          parent->children.push_back(std::move(level[j]));
        }
        next.push_back(std::move(parent));
      }
      level = std::move(next);
    }
    root_ = std::move(level.front());
    root_->parent = nullptr;
  }

  /// Invokes `fn(const Envelope&, const T&)` for every entry whose envelope
  /// intersects \p query. Templated: the visitor is inlined, no
  /// std::function indirection.
  template <typename Visitor>
  void Query(const Envelope& query, Visitor&& fn) const {
    QueryNode(root_.get(), query, fn);
  }

  /// Collects pointers to all candidate values for \p query.
  std::vector<const T*> QueryCandidates(const Envelope& query) const {
    std::vector<const T*> out;
    auto collect = [&out](const Envelope&, const T& v) { out.push_back(&v); };
    QueryNode(root_.get(), query, collect);
    return out;
  }

  /// Invokes `fn(const Envelope&, const T&)` on every entry (tree-order
  /// traversal).
  template <typename Visitor>
  void ForEach(Visitor&& fn) const {
    ForEachNode(root_.get(), fn);
  }

  /// \brief Exact k-nearest-neighbor search (branch and bound).
  ///
  /// \p exact_distance computes the true distance from the query to an
  /// entry's value; envelope distance is used as the lower bound for
  /// pruning, so exact_distance must never be smaller than the distance to
  /// the entry's envelope.
  template <typename DistFn>
  std::vector<std::pair<double, const T*>> Knn(
      const Coordinate& query, size_t k, DistFn&& exact_distance) const {
    std::vector<std::pair<double, const T*>> result;
    if (k == 0 || size_ == 0) return result;

    struct QueueItem {
      double dist;
      const Node* node;    // nullptr when this is an entry
      const Entry* entry;  // nullptr when this is a node
      bool operator>(const QueueItem& o) const { return dist > o.dist; }
    };
    std::priority_queue<QueueItem, std::vector<QueueItem>,
                        std::greater<QueueItem>>
        pq;
    pq.push({root_->env.Distance(query), root_.get(), nullptr});

    while (!pq.empty() && result.size() < k) {
      const QueueItem item = pq.top();
      pq.pop();
      if (item.entry != nullptr) {
        // Entries are enqueued with their exact distance, so popping one
        // means no unexplored node/entry can be closer.
        result.emplace_back(item.dist, &item.entry->value);
        continue;
      }
      const Node* node = item.node;
      if (node->leaf) {
        for (const Entry& e : node->entries) {
          pq.push({exact_distance(e.value), nullptr, &e});
        }
      } else {
        for (const auto& child : node->children) {
          pq.push({child->env.Distance(query), child.get(), nullptr});
        }
      }
    }
    return result;
  }

  /// Depth of the tree (1 for a root-only tree); exposed for tests.
  size_t Depth() const {
    size_t d = 1;
    const Node* n = root_.get();
    while (!n->leaf) {
      ++d;
      n = n->children.front().get();
    }
    return d;
  }

  /// \brief Re-packs the tree's entries into an immutable PackedRTree.
  ///
  /// This is how live-index mode upgrades to the packed layout at probe
  /// time: insert incrementally, then freeze once the index is read-mostly.
  /// Candidate sets are identical (both trees report exactly the entries
  /// whose envelopes intersect the query). Requires T to be copyable.
  PackedRTree<T> Freeze() const {
    std::vector<std::pair<Envelope, T>> entries;
    entries.reserve(size_);
    ForEach([&entries](const Envelope& env, const T& v) {
      entries.emplace_back(env, v);
    });
    return PackedRTree<T>(order_, std::move(entries));
  }

  /// \brief Structural invariant check, used by tests.
  ///
  /// Verifies that every node's envelope is the *tight* union of its
  /// children/entries (not merely a superset), parent links are consistent,
  /// and no node exceeds the order. Returns true when all hold.
  bool CheckInvariants() const {
    return CheckNode(root_.get(), nullptr);
  }

 private:
  struct Node;

  struct Entry {
    Envelope env;
    T value;
  };

  struct Node {
    explicit Node(bool is_leaf) : leaf(is_leaf) {}
    Envelope env;
    bool leaf;
    Node* parent = nullptr;
    std::vector<std::unique_ptr<Node>> children;  // when !leaf
    std::vector<Entry> entries;                   // when leaf
    size_t FanOut() const { return leaf ? entries.size() : children.size(); }
  };

  Node* ChooseLeaf(Node* node, const Envelope& env) const {
    while (!node->leaf) {
      Node* best = nullptr;
      double best_enlargement = 0.0;
      double best_area = 0.0;
      for (const auto& child : node->children) {
        Envelope grown = child->env;
        grown.ExpandToInclude(env);
        const double enlargement = grown.Area() - child->env.Area();
        if (best == nullptr || enlargement < best_enlargement ||
            (enlargement == best_enlargement &&
             child->env.Area() < best_area)) {
          best = child.get();
          best_enlargement = enlargement;
          best_area = child->env.Area();
        }
      }
      node = best;
    }
    return node;
  }

  bool CheckNode(const Node* node, const Node* parent) const {
    if (node->parent != parent) return false;
    if (node->FanOut() > order_) return false;
    Envelope tight;
    if (node->leaf) {
      for (const Entry& e : node->entries) tight.ExpandToInclude(e.env);
    } else {
      for (const auto& c : node->children) {
        if (!CheckNode(c.get(), node)) return false;
        tight.ExpandToInclude(c->env);
      }
    }
    return tight == node->env;
  }

  void HandleOverflow(Node* node) {
    while (node != nullptr && node->FanOut() > order_) {
      Node* parent = node->parent;
      std::unique_ptr<Node> sibling = SplitNode(node);
      if (parent == nullptr) {
        // Grow a new root above the split node.
        auto new_root = std::make_unique<Node>(/*leaf=*/false);
        new_root->env = root_->env;
        sibling->parent = new_root.get();
        root_->parent = new_root.get();
        new_root->children.push_back(std::move(root_));
        new_root->children.push_back(std::move(sibling));
        root_ = std::move(new_root);
        RecomputeEnvelope(root_.get());
        return;
      }
      sibling->parent = parent;
      parent->children.push_back(std::move(sibling));
      RecomputeEnvelope(parent);
      node = parent;
    }
  }

  /// Quadratic split: moves roughly half of \p node's load into a returned
  /// sibling, choosing seeds that waste the most area together.
  std::unique_ptr<Node> SplitNode(Node* node) {
    auto sibling = std::make_unique<Node>(node->leaf);
    if (node->leaf) {
      SplitItems(&node->entries, &sibling->entries,
                 [](const Entry& e) -> const Envelope& { return e.env; });
    } else {
      SplitItems(&node->children, &sibling->children,
                 [](const std::unique_ptr<Node>& n) -> const Envelope& {
                   return n->env;
                 });
      for (auto& child : sibling->children) child->parent = sibling.get();
    }
    RecomputeEnvelope(node);
    RecomputeEnvelope(sibling.get());
    return sibling;
  }

  template <typename Item, typename EnvOf>
  void SplitItems(std::vector<Item>* left, std::vector<Item>* right,
                  EnvOf env_of) {
    std::vector<Item> all = std::move(*left);
    left->clear();
    // Pick the two seeds with the largest combined dead area.
    size_t seed_a = 0;
    size_t seed_b = 1;
    double worst = -1.0;
    for (size_t i = 0; i < all.size(); ++i) {
      for (size_t j = i + 1; j < all.size(); ++j) {
        Envelope combined = env_of(all[i]);
        combined.ExpandToInclude(env_of(all[j]));
        const double dead =
            combined.Area() - env_of(all[i]).Area() - env_of(all[j]).Area();
        if (dead > worst) {
          worst = dead;
          seed_a = i;
          seed_b = j;
        }
      }
    }
    Envelope env_l = env_of(all[seed_a]);
    Envelope env_r = env_of(all[seed_b]);
    const size_t min_fill = (order_ + 1) / 2;
    std::vector<char> taken(all.size(), 0);
    taken[seed_a] = taken[seed_b] = 1;
    left->push_back(std::move(all[seed_a]));
    right->push_back(std::move(all[seed_b]));
    size_t remaining = all.size() - 2;

    while (remaining > 0) {
      // Honor the minimum fill requirement.
      if (left->size() + remaining == min_fill) {
        for (size_t i = 0; i < all.size(); ++i) {
          if (!taken[i]) {
            left->push_back(std::move(all[i]));
            taken[i] = 1;
          }
        }
        break;
      }
      if (right->size() + remaining == min_fill) {
        for (size_t i = 0; i < all.size(); ++i) {
          if (!taken[i]) {
            right->push_back(std::move(all[i]));
            taken[i] = 1;
          }
        }
        break;
      }
      // Assign the next item to the side needing less enlargement.
      size_t pick = 0;
      bool found = false;
      for (size_t i = 0; i < all.size(); ++i) {
        if (!taken[i]) {
          pick = i;
          found = true;
          break;
        }
      }
      STARK_DCHECK(found);
      (void)found;
      Envelope grow_l = env_l;
      grow_l.ExpandToInclude(env_of(all[pick]));
      Envelope grow_r = env_r;
      grow_r.ExpandToInclude(env_of(all[pick]));
      const double cost_l = grow_l.Area() - env_l.Area();
      const double cost_r = grow_r.Area() - env_r.Area();
      if (cost_l <= cost_r) {
        left->push_back(std::move(all[pick]));
        env_l = grow_l;
      } else {
        right->push_back(std::move(all[pick]));
        env_r = grow_r;
      }
      taken[pick] = 1;
      --remaining;
    }
  }

  void RecomputeEnvelope(Node* node) {
    node->env = Envelope();
    if (node->leaf) {
      for (const Entry& e : node->entries) node->env.ExpandToInclude(e.env);
    } else {
      for (const auto& c : node->children) node->env.ExpandToInclude(c->env);
    }
  }

  template <typename Visitor>
  void QueryNode(const Node* node, const Envelope& query, Visitor& fn) const {
    if (!node->env.Intersects(query)) return;
    if (node->leaf) {
      for (const Entry& e : node->entries) {
        if (e.env.Intersects(query)) fn(e.env, e.value);
      }
      return;
    }
    for (const auto& child : node->children) {
      QueryNode(child.get(), query, fn);
    }
  }

  template <typename Visitor>
  void ForEachNode(const Node* node, Visitor& fn) const {
    if (node->leaf) {
      for (const Entry& e : node->entries) fn(e.env, e.value);
      return;
    }
    for (const auto& child : node->children) ForEachNode(child.get(), fn);
  }

  size_t order_;
  size_t size_ = 0;
  std::unique_ptr<Node> root_;
};

}  // namespace stark

#endif  // STARK_INDEX_RTREE_H_
