#include "serve/tcp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <memory>
#include <string>
#include <utility>

#include "obs/metrics.h"

namespace stark {
namespace serve {
namespace {

const char* CodeToken(const Status& status) {
  if (status.IsResourceExhausted()) return "RESOURCE_EXHAUSTED";
  if (status.IsDeadlineExceeded()) return "DEADLINE_EXCEEDED";
  if (status.IsCancelled()) return "CANCELLED";
  switch (status.code()) {
    case StatusCode::kParseError: return "PARSE_ERROR";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kKeyError: return "KEY_ERROR";
    default: return "ERROR";
  }
}

/// One-line sanitization: the wire protocol's status line must not contain
/// embedded newlines (they would be parsed as payload).
std::string OneLine(std::string s) {
  for (char& c : s) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return s;
}

bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

obs::Gauge* ConnectionsGauge() {
  static obs::Gauge* const g =
      obs::DefaultMetrics().GetGauge("serve.tcp.connections");
  return g;
}

/// True when \p line's last non-blank character is ';' — the statement
/// terminator that triggers execution of the buffered script.
bool EndsStatement(const std::string& line) {
  for (size_t i = line.size(); i > 0; --i) {
    const char c = line[i - 1];
    if (c == ' ' || c == '\t' || c == '\r') continue;
    return c == ';';
  }
  return false;
}

std::string RenderReply(const QueryResult& result) {
  std::string reply;
  if (result.status.ok()) {
    reply = "+OK " + std::to_string(result.epoch) + " " +
            std::to_string(result.exec_ns / 1000) + "\n";
    reply += result.output;
    if (!result.output.empty() && result.output.back() != '\n') reply += "\n";
  } else {
    reply = std::string("-ERR ") + CodeToken(result.status) + " " +
            OneLine(result.status.message()) + "\n";
  }
  reply += ".\n";
  return reply;
}

}  // namespace

TcpFrontend::TcpFrontend(Server* server, uint16_t port)
    : server_(server), port_(port) {}

TcpFrontend::~TcpFrontend() { Stop(); }

Status TcpFrontend::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("serve: socket: ") +
                           std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only, by design
  addr.sin_port = htons(port_);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError(std::string("serve: bind: ") +
                           std::strerror(errno));
  }
  if (::listen(listen_fd_, 64) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError(std::string("serve: listen: ") +
                           std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void TcpFrontend::Stop() {
  if (stopping_.exchange(true)) return;
  if (listen_fd_ >= 0) {
    // shutdown() unblocks accept(); close() follows in the accept loop's
    // epilogue here to keep the fd valid until the thread observed it.
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Kick every live connection out of recv(). Holding clients_mu_ makes
  // this safe against fd recycling: a client thread closes its fd only
  // inside CloseClient(), under this same lock, and unregisters it in the
  // same critical section — so every fd still in client_fds_ here is open.
  {
    std::lock_guard<std::mutex> lock(clients_mu_);
    for (int fd : client_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  // Join every client thread, finished or still draining.
  std::unordered_map<uint64_t, std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(clients_mu_);
    threads.swap(client_threads_);
    finished_threads_.clear();
  }
  for (auto& [id, t] : threads) {
    if (t.joinable()) t.join();
  }
}

void TcpFrontend::AcceptLoop() {
  static obs::Counter* const accepted =
      obs::DefaultMetrics().GetCounter("serve.tcp.accepted");
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) break;
      if (errno == EINTR) continue;
      break;  // listener gone
    }
    accepted->Increment();
    ReapFinishedThreads();
    std::lock_guard<std::mutex> lock(clients_mu_);
    const uint64_t id = ++next_client_id_;
    client_fds_.push_back(fd);
    client_threads_.emplace(id,
                            std::thread([this, id, fd] { ClientLoop(id, fd); }));
    ConnectionsGauge()->Set(static_cast<int64_t>(client_fds_.size()));
  }
}

void TcpFrontend::ClientLoop(uint64_t id, int fd) {
  std::unique_ptr<Session> session = server_->OpenSession();
  std::string inbuf;
  std::string script;
  char buf[4096];

  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;  // disconnect or Stop()'s shutdown()
    inbuf.append(buf, static_cast<size_t>(n));

    size_t newline;
    while ((newline = inbuf.find('\n')) != std::string::npos) {
      std::string line = inbuf.substr(0, newline);
      inbuf.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      script += line;
      script += '\n';
      if (!EndsStatement(line)) continue;

      QueryResult result = session->Run(script);
      script.clear();
      if (!SendAll(fd, RenderReply(result))) {
        CloseClient(id, fd);
        return;
      }
    }
  }
  CloseClient(id, fd);
}

void TcpFrontend::CloseClient(uint64_t id, int fd) {
  std::lock_guard<std::mutex> lock(clients_mu_);
  client_fds_.erase(std::remove(client_fds_.begin(), client_fds_.end(), fd),
                    client_fds_.end());
  // Unregister and close atomically w.r.t. Stop()'s shutdown() sweep, which
  // runs under the same lock — the fd cannot be recycled out from under it.
  ::close(fd);
  finished_threads_.push_back(id);
  ConnectionsGauge()->Set(static_cast<int64_t>(client_fds_.size()));
}

void TcpFrontend::ReapFinishedThreads() {
  std::vector<std::thread> done;
  {
    std::lock_guard<std::mutex> lock(clients_mu_);
    for (const uint64_t id : finished_threads_) {
      auto it = client_threads_.find(id);
      if (it == client_threads_.end()) continue;  // already taken by Stop()
      done.push_back(std::move(it->second));
      client_threads_.erase(it);
    }
    finished_threads_.clear();
  }
  // A finished thread's last touch of `this` is the locked push of its id
  // in CloseClient, so joining here (outside the lock) cannot deadlock.
  for (std::thread& t : done) {
    if (t.joinable()) t.join();
  }
}

}  // namespace serve
}  // namespace stark
