#include "serve/tcp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <memory>
#include <string>
#include <utility>

#include "obs/metrics.h"

namespace stark {
namespace serve {
namespace {

const char* CodeToken(const Status& status) {
  if (status.IsResourceExhausted()) return "RESOURCE_EXHAUSTED";
  if (status.IsDeadlineExceeded()) return "DEADLINE_EXCEEDED";
  if (status.IsCancelled()) return "CANCELLED";
  switch (status.code()) {
    case StatusCode::kParseError: return "PARSE_ERROR";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kKeyError: return "KEY_ERROR";
    default: return "ERROR";
  }
}

/// One-line sanitization: the wire protocol's status line must not contain
/// embedded newlines (they would be parsed as payload).
std::string OneLine(std::string s) {
  for (char& c : s) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return s;
}

bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

/// True when \p line's last non-blank character is ';' — the statement
/// terminator that triggers execution of the buffered script.
bool EndsStatement(const std::string& line) {
  for (size_t i = line.size(); i > 0; --i) {
    const char c = line[i - 1];
    if (c == ' ' || c == '\t' || c == '\r') continue;
    return c == ';';
  }
  return false;
}

std::string RenderReply(const QueryResult& result) {
  std::string reply;
  if (result.status.ok()) {
    reply = "+OK " + std::to_string(result.epoch) + " " +
            std::to_string(result.exec_ns / 1000) + "\n";
    reply += result.output;
    if (!result.output.empty() && result.output.back() != '\n') reply += "\n";
  } else {
    reply = std::string("-ERR ") + CodeToken(result.status) + " " +
            OneLine(result.status.message()) + "\n";
  }
  reply += ".\n";
  return reply;
}

}  // namespace

TcpFrontend::TcpFrontend(Server* server, uint16_t port)
    : server_(server), port_(port) {}

TcpFrontend::~TcpFrontend() { Stop(); }

Status TcpFrontend::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("serve: socket: ") +
                           std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only, by design
  addr.sin_port = htons(port_);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError(std::string("serve: bind: ") +
                           std::strerror(errno));
  }
  if (::listen(listen_fd_, 64) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError(std::string("serve: listen: ") +
                           std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void TcpFrontend::Stop() {
  if (stopping_.exchange(true)) return;
  if (listen_fd_ >= 0) {
    // shutdown() unblocks accept(); close() follows in the accept loop's
    // epilogue here to keep the fd valid until the thread observed it.
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::vector<int> fds;
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(clients_mu_);
    fds.swap(client_fds_);
    threads.swap(client_threads_);
  }
  for (int fd : fds) ::shutdown(fd, SHUT_RDWR);
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
}

void TcpFrontend::AcceptLoop() {
  static obs::Gauge* const connections =
      obs::DefaultMetrics().GetGauge("serve.tcp.connections");
  static obs::Counter* const accepted =
      obs::DefaultMetrics().GetCounter("serve.tcp.accepted");
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) break;
      if (errno == EINTR) continue;
      break;  // listener gone
    }
    accepted->Increment();
    std::lock_guard<std::mutex> lock(clients_mu_);
    client_fds_.push_back(fd);
    client_threads_.emplace_back([this, fd] {
      ClientLoop(fd);
      connections->Set(static_cast<int64_t>([this] {
        std::lock_guard<std::mutex> inner(clients_mu_);
        return client_fds_.size();
      }()));
    });
    connections->Set(static_cast<int64_t>(client_fds_.size()));
  }
}

void TcpFrontend::ClientLoop(int fd) {
  std::unique_ptr<Session> session = server_->OpenSession();
  std::string inbuf;
  std::string script;
  char buf[4096];

  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;  // disconnect or Stop()'s shutdown()
    inbuf.append(buf, static_cast<size_t>(n));

    size_t newline;
    while ((newline = inbuf.find('\n')) != std::string::npos) {
      std::string line = inbuf.substr(0, newline);
      inbuf.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      script += line;
      script += '\n';
      if (!EndsStatement(line)) continue;

      QueryResult result = session->Run(script);
      script.clear();
      if (!SendAll(fd, RenderReply(result))) {
        RemoveClientFd(fd);
        ::close(fd);
        return;
      }
    }
  }
  // Unregister before close so Stop() never shutdown()s a recycled fd.
  RemoveClientFd(fd);
  ::close(fd);
}

void TcpFrontend::RemoveClientFd(int fd) {
  std::lock_guard<std::mutex> lock(clients_mu_);
  client_fds_.erase(std::remove(client_fds_.begin(), client_fds_.end(), fd),
                    client_fds_.end());
}

}  // namespace serve
}  // namespace stark
