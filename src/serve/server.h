/// \file server.h
/// The concurrent query-serving front end: many client sessions submit
/// Piglet scripts, a bounded admission queue (serve/scheduler.h) decides
/// who gets in, a small pool of query workers executes admitted queries
/// against pinned dataset snapshots (serve/catalog.h), and a drain-style
/// Shutdown() gets everything back out cleanly.
///
/// Isolation model: every Session owns its *own* engine Context (sharing
/// the server's single ThreadPool), so `SET job.deadline_ms`, speculation
/// knobs and `SET obs.profile` are naturally session-scoped — one client
/// tuning its deadlines cannot change another client's. Process-global SET
/// keys are rejected in served sessions (Interpreter session mode).
///
/// Every submitted query terminates with exactly one of:
///   - OK (result payload),
///   - ResourceExhausted (shed at admission; Retry-After hint attached),
///   - DeadlineExceeded (expired in queue or mid-execution),
///   - Cancelled (client token or server drain),
///   - another error Status from the script itself (parse error, ...).
#ifndef STARK_SERVE_SERVER_H_
#define STARK_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "engine/context.h"
#include "obs/openmetrics.h"
#include "piglet/interpreter.h"
#include "serve/catalog.h"
#include "serve/scheduler.h"

namespace stark {
namespace serve {

struct ServerOptions {
  /// Query workers: how many admitted queries execute concurrently.
  size_t query_threads = 4;
  /// Threads in the shared engine pool all sessions' jobs run on.
  size_t engine_threads = 4;
  /// Admission queue bounds / weights (workers is overwritten from
  /// query_threads).
  SchedulerOptions scheduler;
  /// Applied to a session at creation; 0 = no deadline until the client
  /// SETs one. Covers queue wait + execution.
  uint64_t default_deadline_ms = 0;
  /// Shutdown(): how long to wait for in-flight queries before cancelling
  /// the stragglers.
  uint64_t drain_grace_ms = 500;
  /// Rows of DUMP output before truncation at degradation level >= 2
  /// (kShedOverhead); 0 = never truncate.
  size_t degraded_dump_rows = 128;
};

/// Outcome of one submitted script.
struct QueryResult {
  Status status;
  std::string output;          ///< DUMP/DESCRIBE text of the script
  uint64_t epoch = 0;          ///< newest dataset epoch pinned for the query
  uint64_t queue_ns = 0;       ///< time spent waiting for a worker
  uint64_t exec_ns = 0;        ///< execution wall time
  uint64_t retry_after_ms = 0; ///< backoff hint, set when shed
};

class Server;

/// \brief One client's connection-scoped state: its Context (private
/// engine knobs over the shared pool), its Interpreter (private relations)
/// and its scheduling class. Obtain via Server::OpenSession(); one query
/// runs at a time per session (concurrent Submits on one session
/// serialize). Sessions must not outlive the Server.
class Session {
 public:
  ~Session();
  STARK_DISALLOW_COPY_AND_ASSIGN(Session);

  /// Submits \p script and blocks for its result.
  QueryResult Run(const std::string& script);

  /// Admission + async execution. The future always becomes ready — shed
  /// and drained queries resolve with their typed status. The session must
  /// stay alive until the future is ready.
  std::future<QueryResult> Submit(std::string script);

  /// Scheduling class for subsequent submissions (also settable from the
  /// script side via `SET serve.class <0|1|2>`).
  void set_query_class(QueryClass cls) { cls_.store(static_cast<int>(cls)); }
  QueryClass query_class() const {
    return static_cast<QueryClass>(cls_.load());
  }

  uint64_t id() const { return id_; }

 private:
  friend class Server;
  Session(Server* server, uint64_t id);

  Server* const server_;
  const uint64_t id_;
  std::atomic<int> cls_{static_cast<int>(QueryClass::kInteractive)};
  /// Session-scoped total deadline (queue wait + execution) captured by
  /// Submit for each query. Lives outside the Context because Submit reads
  /// it from the client thread while a worker executes on ctx_: the
  /// Context's job_deadline_ms is per-query scratch (remaining budget),
  /// touched only by the worker under run_mu_. Updated by the `SET
  /// job.deadline_ms` interpreter hook, so it survives across queries.
  std::atomic<uint64_t> deadline_ms_{0};

  /// Serializes query execution within the session (relations_ etc. are
  /// single-threaded state).
  std::mutex run_mu_;
  std::ostringstream out_;
  std::unique_ptr<Context> ctx_;
  std::unique_ptr<piglet::Interpreter> interp_;
};

/// \brief The serving process: shared catalog + engine pool + admission
/// queue + query workers. Start() spins up the workers; Shutdown() drains
/// (see class comment in scheduler.h and docs/SERVING.md).
class Server {
 public:
  /// \p catalog must outlive the server. Does not take ownership.
  Server(Catalog* catalog, ServerOptions options);
  ~Server();
  STARK_DISALLOW_COPY_AND_ASSIGN(Server);

  Status Start();

  /// Drain shutdown: close admission (new queries shed with "draining"),
  /// give in-flight queries drain_grace_ms, cancel stragglers, join the
  /// workers, then dump the flight recorder and stop the metrics exporter
  /// (obs teardown satellite). Idempotent.
  void Shutdown();

  std::unique_ptr<Session> OpenSession();

  Catalog* catalog() const { return catalog_; }
  const ServerOptions& options() const { return options_; }
  AdmissionQueue& queue() { return queue_; }
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  /// Queries currently executing on workers.
  size_t ActiveQueries() const { return active_.load(); }

 private:
  friend class Session;

  std::atomic<int64_t> open_sessions_{0};
  std::atomic<bool> shutdown_done_{false};

  struct Request {
    Session* session = nullptr;
    std::string script;
    QueryClass cls = QueryClass::kInteractive;
    uint64_t deadline_ms = 0;  ///< captured at submit; 0 = none
    uint64_t submit_ns = 0;
    std::shared_ptr<CancelToken> token;
    std::shared_ptr<std::promise<QueryResult>> promise;
  };

  std::future<QueryResult> Submit(Session* session, std::string script);
  void WorkerLoop();
  void Execute(const std::shared_ptr<Request>& req);
  /// Runs \p req's script on the caller thread against pinned snapshots.
  QueryResult RunScript(const std::shared_ptr<Request>& req,
                        DegradationLevel level);
  void Finish(const std::shared_ptr<Request>& req, QueryResult result);

  static uint64_t NowNs();

  Catalog* const catalog_;
  const ServerOptions options_;
  std::shared_ptr<ThreadPool> engine_pool_;
  AdmissionQueue queue_;

  std::vector<std::thread> workers_;
  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  /// Set after the drain grace expires: in-queue work resolves as
  /// Cancelled without executing.
  std::atomic<bool> hard_drain_{false};
  std::atomic<size_t> active_{0};
  std::atomic<uint64_t> next_session_id_{0};
  std::atomic<uint64_t> next_query_id_{0};

  /// Tokens of in-flight queries, for drain cancellation.
  std::mutex inflight_mu_;
  std::vector<std::shared_ptr<CancelToken>> inflight_;

  /// Optional background OpenMetrics exporter (env-configured); stopped
  /// last in Shutdown() so the final export sees the drained state.
  std::unique_ptr<obs::MetricsExporter> exporter_;
};

}  // namespace serve
}  // namespace stark

#endif  // STARK_SERVE_SERVER_H_
