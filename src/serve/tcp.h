/// \file tcp.h
/// Thread-per-client TCP front end over serve::Server (loopback only).
///
/// Wire protocol (line-oriented, one pending query per connection):
///   - The client sends Piglet statements; input accumulates until a line
///     whose last non-blank character is ';', then the buffered script runs
///     as one query.
///   - Reply on success:   `+OK <epoch> <exec_us>\n<payload>.\n`
///     (payload = DUMP/DESCRIBE output; terminated SMTP-style by a line
///     containing a single '.', which never begins a payload row).
///   - Reply on failure:   `-ERR <CODE> <message>\n.\n`
///     A shed query's CODE is RESOURCE_EXHAUSTED and the message carries
///     the `retry_after_ms=<n>` backoff hint.
///   - `SET serve.class <n>;` switches the connection's scheduling class.
///
/// Each connection owns one serve::Session, so engine knobs set over the
/// wire (`SET job.deadline_ms 50;`) apply to that connection alone.
#ifndef STARK_SERVE_TCP_H_
#define STARK_SERVE_TCP_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "serve/server.h"

namespace stark {
namespace serve {

/// \brief Accepts loopback connections and pumps each through a Session.
/// Start() binds and spawns the accept loop; Stop() closes the listener,
/// shuts down every live connection and joins all threads.
class TcpFrontend {
 public:
  /// \p port 0 binds an ephemeral port (read it back via port()).
  TcpFrontend(Server* server, uint16_t port = 0);
  ~TcpFrontend();
  STARK_DISALLOW_COPY_AND_ASSIGN(TcpFrontend);

  Status Start();
  void Stop();

  /// The bound port (valid after Start()).
  uint16_t port() const { return port_; }

 private:
  void AcceptLoop();
  void ClientLoop(uint64_t id, int fd);
  /// Connection epilogue, called by the owning client thread: unregisters
  /// and closes \p fd and marks thread \p id reapable. fd close happens
  /// under clients_mu_ — the same lock Stop() holds while it shutdown()s
  /// registered fds — so Stop() can never act on a recycled descriptor.
  void CloseClient(uint64_t id, int fd);
  /// Joins client threads that have finished (reaped by the accept loop as
  /// new connections arrive, and by Stop()), so a long-lived frontend does
  /// not accumulate dead thread handles.
  void ReapFinishedThreads();

  Server* const server_;
  uint16_t port_;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;

  std::mutex clients_mu_;
  std::vector<int> client_fds_;
  std::unordered_map<uint64_t, std::thread> client_threads_;
  std::vector<uint64_t> finished_threads_;
  uint64_t next_client_id_ = 0;
};

}  // namespace serve
}  // namespace stark

#endif  // STARK_SERVE_TCP_H_
