/// \file catalog.h
/// Shared, versioned datasets served to concurrent client sessions.
///
/// A Dataset is an append-only collection of StreamEvents behind a
/// SnapshotRegistry: Ingest() appends a batch, rebuilds the packed R-tree
/// over the full collection *off to the side*, and publishes the result as
/// a new epoch, while in-flight readers keep querying the epoch they
/// pinned. Readers see a DatasetSnapshot — an immutable {version, events,
/// tree} triple whose internal consistency can be checked cheaply (the
/// torn-swap detector of the TSan hammer test).
#ifndef STARK_SERVE_CATALOG_H_
#define STARK_SERVE_CATALOG_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "common/status.h"
#include "core/columnar.h"
#include "index/packed_rtree.h"
#include "serve/snapshot_registry.h"
#include "stream/event.h"

namespace stark {
namespace serve {

/// \brief Lazily-built columnar companion of one dataset epoch.
///
/// The slab is built on the first spatial FILTER against the snapshot and
/// shared by every later reader of the same epoch
/// (engine.columnar.slab_reuse); epochs are immutable, so the batch never
/// invalidates. The mutex only guards the build-once handoff.
struct SnapshotColumnar {
  std::mutex mu;
  std::shared_ptr<const ColumnarBatch> batch;
};

/// \brief One immutable published version of a dataset.
///
/// `tree` indexes every event by its envelope; payloads are indices into
/// `events`, so the slab is shared rather than copied into the tree.
struct DatasetSnapshot {
  /// Ingest generation: how many Ingest() batches this version includes.
  uint64_t version = 0;
  std::shared_ptr<const std::vector<stream::StreamEvent>> events;
  std::shared_ptr<const PackedRTree<uint32_t>> tree;
  /// Columnar slab cache for this epoch (never null; batch inside is built
  /// on first use). Not part of the torn-swap consistency contract.
  std::shared_ptr<SnapshotColumnar> columnar =
      std::make_shared<SnapshotColumnar>();

  /// Internal-consistency check used by the snapshot hammer test: a torn
  /// publication (events from one version, tree from another) trips this.
  bool Consistent() const {
    return events != nullptr && tree != nullptr &&
           tree->size() == events->size();
  }
};

using DatasetRegistry = SnapshotRegistry<DatasetSnapshot>;
using PinnedDataset = PinnedSnapshot<DatasetSnapshot>;

/// \brief Name -> dataset map shared by the ingestion thread(s) and every
/// serving session. Create/ingest/pin are thread-safe.
class Catalog {
 public:
  Catalog() = default;
  STARK_DISALLOW_COPY_AND_ASSIGN(Catalog);

  /// Registers an empty dataset (idempotent; \p order is the packed R-tree
  /// fan-out for its snapshots). An initial empty epoch is published so
  /// readers always find something to pin.
  Status CreateDataset(const std::string& name, size_t order = 16);

  /// Appends \p batch and publishes a new snapshot (one epoch per call).
  /// Returns the new epoch id. Ingest calls for one dataset serialize;
  /// readers are never blocked by an in-progress rebuild.
  Result<uint64_t> Ingest(const std::string& name,
                          std::vector<stream::StreamEvent> batch);

  /// Pins the newest snapshot of \p name for reading.
  Result<PinnedDataset> Pin(const std::string& name);

  /// The dataset's registry (for epoch accounting in tests/benches).
  Result<DatasetRegistry*> Registry(const std::string& name);

  std::vector<std::string> ListDatasets() const;

 private:
  struct Dataset {
    size_t order = 16;
    /// Serializes ingests; snapshots are built under this, published into
    /// the registry, and never mutated after.
    std::mutex ingest_mu;
    std::vector<stream::StreamEvent> all_events;  // guarded by ingest_mu
    uint64_t version = 0;                         // guarded by ingest_mu
    DatasetRegistry registry;
  };

  Result<Dataset*> Find(const std::string& name) const;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Dataset>> datasets_;
};

/// Builds the immutable snapshot for \p events (shared by Catalog::Ingest
/// and the serial-verification path of tests/benches: both must produce
/// identical trees for the differential check to be exact).
DatasetSnapshot BuildSnapshot(uint64_t version,
                              std::vector<stream::StreamEvent> events,
                              size_t order);

}  // namespace serve
}  // namespace stark

#endif  // STARK_SERVE_CATALOG_H_
