#include "serve/catalog.h"

#include <utility>

namespace stark {
namespace serve {

DatasetSnapshot BuildSnapshot(uint64_t version,
                              std::vector<stream::StreamEvent> events,
                              size_t order) {
  auto slab = std::make_shared<std::vector<stream::StreamEvent>>(
      std::move(events));
  std::vector<std::pair<Envelope, uint32_t>> entries;
  entries.reserve(slab->size());
  for (size_t i = 0; i < slab->size(); ++i) {
    entries.emplace_back((*slab)[i].obj.envelope(),
                         static_cast<uint32_t>(i));
  }
  DatasetSnapshot snap;
  snap.version = version;
  snap.events = std::move(slab);
  snap.tree = std::make_shared<const PackedRTree<uint32_t>>(
      order, std::move(entries));
  return snap;
}

Status Catalog::CreateDataset(const std::string& name, size_t order) {
  std::unique_ptr<Dataset> fresh;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (datasets_.count(name) != 0) return Status::OK();
    fresh = std::make_unique<Dataset>();
    fresh->order = order == 0 ? 16 : order;
    datasets_[name] = std::move(fresh);
  }
  // Publish the empty version-0 epoch outside mu_ (registry is internally
  // locked; dataset pointers are stable once inserted).
  Result<Dataset*> ds = Find(name);
  Dataset* d = ds.ValueOrDie();
  std::lock_guard<std::mutex> ingest_lock(d->ingest_mu);
  if (d->registry.NewestEpoch() == 0) {
    d->registry.Publish(std::make_shared<const DatasetSnapshot>(
        BuildSnapshot(0, {}, d->order)));
  }
  obs::DefaultMetrics()
      .GetGauge("serve.catalog.datasets")
      ->Set(static_cast<int64_t>(ListDatasets().size()));
  return Status::OK();
}

Result<uint64_t> Catalog::Ingest(const std::string& name,
                                 std::vector<stream::StreamEvent> batch) {
  static obs::Counter* const ingested =
      obs::DefaultMetrics().GetCounter("serve.ingest.events");
  static obs::Counter* const publishes =
      obs::DefaultMetrics().GetCounter("serve.ingest.publishes");
  STARK_ASSIGN_OR_RETURN(Dataset* d, Find(name));
  std::lock_guard<std::mutex> lock(d->ingest_mu);
  ingested->Add(batch.size());
  for (stream::StreamEvent& e : batch) {
    d->all_events.push_back(std::move(e));
  }
  ++d->version;
  // The rebuild runs on the ingestion thread with only this dataset's
  // ingest lock held — readers keep serving pinned epochs throughout.
  DatasetSnapshot snap = BuildSnapshot(d->version, d->all_events, d->order);
  const uint64_t epoch = d->registry.Publish(
      std::make_shared<const DatasetSnapshot>(std::move(snap)));
  publishes->Increment();
  return epoch;
}

Result<PinnedDataset> Catalog::Pin(const std::string& name) {
  STARK_ASSIGN_OR_RETURN(Dataset* d, Find(name));
  PinnedDataset pinned = d->registry.Pin();
  if (!pinned.valid()) {
    return Status::KeyError("serve: dataset '" + name +
                            "' has no published snapshot");
  }
  return pinned;
}

Result<DatasetRegistry*> Catalog::Registry(const std::string& name) {
  STARK_ASSIGN_OR_RETURN(Dataset* d, Find(name));
  return &d->registry;
}

std::vector<std::string> Catalog::ListDatasets() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(datasets_.size());
  for (const auto& [name, d] : datasets_) names.push_back(name);
  return names;
}

Result<Catalog::Dataset*> Catalog::Find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = datasets_.find(name);
  if (it == datasets_.end()) {
    return Status::KeyError("serve: unknown dataset '" + name + "'");
  }
  return it->second.get();
}

}  // namespace serve
}  // namespace stark
