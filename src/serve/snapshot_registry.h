/// \file snapshot_registry.h
/// Epoch-based snapshot isolation for the serving layer.
///
/// An ingestion thread builds a new immutable state object (a packed R-tree
/// plus its backing event slab) off to the side and *publishes* it as a new
/// epoch with one call; concurrent readers *pin* the newest epoch for the
/// duration of a query and release it when done. Publication is atomic from
/// the reader's point of view — a Pin() observes either the old or the new
/// {epoch, state} pair, never a torn mix — and an epoch is reclaimed only
/// after the last pin on it drains, so a reader's view never mutates or
/// disappears underneath a running query. This is the classic RCU/epoch
/// pattern, implemented with a small mutex (pin/unpin are O(1) under it;
/// queries run entirely outside it).
///
/// Invariants, checked in debug builds and by the TSan hammer test:
///   - the newest epoch is never reclaimed, even at zero pins;
///   - an epoch with pins > 0 is never reclaimed;
///   - epochs are reclaimed as soon as both conditions clear (on the
///     Release() of the last pin, or on the Publish() that obsoletes an
///     unpinned epoch) — after readers drain, exactly one epoch remains.
#ifndef STARK_SERVE_SNAPSHOT_REGISTRY_H_
#define STARK_SERVE_SNAPSHOT_REGISTRY_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <utility>

#include "common/macros.h"
#include "obs/metrics.h"

namespace stark {
namespace serve {

template <typename T>
class SnapshotRegistry;

/// \brief RAII pin on one epoch of a SnapshotRegistry.
///
/// Holds both the refcount (the registry will not reclaim the epoch) and a
/// shared_ptr to the state (the state outlives the pin even if the registry
/// itself is destroyed first). Movable, not copyable.
template <typename T>
class PinnedSnapshot {
 public:
  PinnedSnapshot() = default;
  PinnedSnapshot(PinnedSnapshot&& other) noexcept { *this = std::move(other); }
  PinnedSnapshot& operator=(PinnedSnapshot&& other) noexcept {
    if (this != &other) {
      Release();
      registry_ = other.registry_;
      epoch_ = other.epoch_;
      state_ = std::move(other.state_);
      other.registry_ = nullptr;
      other.epoch_ = 0;
    }
    return *this;
  }
  ~PinnedSnapshot() { Release(); }

  PinnedSnapshot(const PinnedSnapshot&) = delete;
  PinnedSnapshot& operator=(const PinnedSnapshot&) = delete;

  bool valid() const { return state_ != nullptr; }
  uint64_t epoch() const { return epoch_; }
  const T& operator*() const { return *state_; }
  const T* operator->() const { return state_.get(); }
  const std::shared_ptr<const T>& state() const { return state_; }

  /// Drops the pin early (idempotent). The state_ shared_ptr is kept by
  /// callers that copied it; the *epoch* becomes reclaimable.
  void Release() {
    if (registry_ != nullptr) {
      registry_->Unpin(epoch_);
      registry_ = nullptr;
    }
    state_.reset();
  }

 private:
  friend class SnapshotRegistry<T>;
  PinnedSnapshot(SnapshotRegistry<T>* registry, uint64_t epoch,
                 std::shared_ptr<const T> state)
      : registry_(registry), epoch_(epoch), state_(std::move(state)) {}

  SnapshotRegistry<T>* registry_ = nullptr;
  uint64_t epoch_ = 0;
  std::shared_ptr<const T> state_;
};

/// \brief The epoch manager: Publish() new immutable states, Pin() the
/// newest one for reading. Thread-safe; see file comment for the contract.
template <typename T>
class SnapshotRegistry {
 public:
  SnapshotRegistry()
      : published_(obs::DefaultMetrics().GetCounter("serve.epochs.published")),
        reclaimed_(obs::DefaultMetrics().GetCounter("serve.epochs.reclaimed")),
        live_(obs::DefaultMetrics().GetGauge("serve.epochs.live")) {}

  STARK_DISALLOW_COPY_AND_ASSIGN(SnapshotRegistry);

  ~SnapshotRegistry() {
    // Pins must have drained before the registry dies; a PinnedSnapshot
    // would otherwise Unpin() into freed memory. Served queries hold pins
    // only while running, and the server joins its workers before tearing
    // down the catalog.
    std::lock_guard<std::mutex> lock(mu_);
    for (const Entry& e : epochs_) STARK_CHECK(e.pins == 0);
  }

  /// Atomically makes \p state the newest epoch and returns its id (ids
  /// increase monotonically from 1). Unpinned older epochs are reclaimed
  /// immediately; pinned ones stay until their readers drain.
  uint64_t Publish(std::shared_ptr<const T> state) {
    uint64_t reclaimed_now = 0;
    uint64_t epoch = 0;
    size_t live_now = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      epoch = ++next_epoch_;
      epochs_.push_back(Entry{epoch, std::move(state), 0});
      reclaimed_now = ReclaimLocked();
      live_now = epochs_.size();
    }
    published_->Increment();
    reclaimed_->Add(reclaimed_now);
    live_->Set(static_cast<int64_t>(live_now));
    return epoch;
  }

  /// Pins and returns the newest epoch; invalid when nothing has been
  /// published yet. The {epoch, state} pair is read under the same lock
  /// that Publish() writes it, so it is never torn.
  PinnedSnapshot<T> Pin() {
    std::lock_guard<std::mutex> lock(mu_);
    if (epochs_.empty()) return PinnedSnapshot<T>();
    Entry& newest = epochs_.back();
    ++newest.pins;
    return PinnedSnapshot<T>(this, newest.epoch, newest.state);
  }

  /// Number of epochs currently retained (newest + any still pinned).
  size_t LiveEpochs() const {
    std::lock_guard<std::mutex> lock(mu_);
    return epochs_.size();
  }

  /// Open pins on \p epoch (0 when already reclaimed).
  uint64_t Pins(uint64_t epoch) const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Entry& e : epochs_) {
      if (e.epoch == epoch) return e.pins;
    }
    return 0;
  }

  /// Newest published epoch id (0 before the first Publish).
  uint64_t NewestEpoch() const {
    std::lock_guard<std::mutex> lock(mu_);
    return epochs_.empty() ? 0 : epochs_.back().epoch;
  }

 private:
  friend class PinnedSnapshot<T>;

  struct Entry {
    uint64_t epoch = 0;
    std::shared_ptr<const T> state;
    uint64_t pins = 0;
  };

  void Unpin(uint64_t epoch) {
    uint64_t reclaimed_now = 0;
    size_t live_now = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (Entry& e : epochs_) {
        if (e.epoch == epoch) {
          STARK_CHECK(e.pins > 0);
          --e.pins;
          break;
        }
      }
      reclaimed_now = ReclaimLocked();
      live_now = epochs_.size();
    }
    if (reclaimed_now > 0) {
      reclaimed_->Add(reclaimed_now);
      live_->Set(static_cast<int64_t>(live_now));
    }
  }

  /// Drops every non-newest epoch whose pins have drained. Returns how many
  /// were reclaimed. Caller holds mu_.
  uint64_t ReclaimLocked() {
    uint64_t count = 0;
    while (epochs_.size() > 1 && epochs_.front().pins == 0) {
      epochs_.pop_front();
      ++count;
    }
    // Interior epochs (older than newest, younger than a still-pinned one)
    // can also be droppable; sweep them so a long-pinned straggler does not
    // pin the whole chain of intermediate snapshots in memory.
    for (size_t i = 0; i + 1 < epochs_.size();) {
      if (epochs_[i].pins == 0) {
        epochs_.erase(epochs_.begin() + static_cast<long>(i));
        ++count;
      } else {
        ++i;
      }
    }
    return count;
  }

  mutable std::mutex mu_;
  std::deque<Entry> epochs_;
  uint64_t next_epoch_ = 0;

  obs::Counter* const published_;
  obs::Counter* const reclaimed_;
  obs::Gauge* const live_;
};

}  // namespace serve
}  // namespace stark

#endif  // STARK_SERVE_SNAPSHOT_REGISTRY_H_
