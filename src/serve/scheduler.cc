#include "serve/scheduler.h"

#include <algorithm>
#include <utility>

namespace stark {
namespace serve {
namespace {

// Stride-scheduling scale: per-dequeue pass increment is kStrideScale /
// weight, so a weight-8 class advances 8x slower than a weight-1 class and
// wins proportionally more dequeues.
constexpr uint64_t kStrideScale = 1 << 20;

constexpr uint64_t kMinRetryMs = 1;
constexpr uint64_t kMaxRetryMs = 30'000;
// Retry-After fallback before any completion has been observed.
constexpr uint64_t kDefaultServiceNs = 20'000'000;  // 20ms

size_t DeriveClassLimit(size_t configured, size_t global, QueryClass cls) {
  if (configured != 0) return configured;
  switch (cls) {
    case QueryClass::kInteractive:
      return global;
    case QueryClass::kBatch:
      return std::max<size_t>(1, global / 2);
    case QueryClass::kBestEffort:
      return std::max<size_t>(1, global / 4);
  }
  return global;
}

}  // namespace

const char* QueryClassName(QueryClass cls) {
  switch (cls) {
    case QueryClass::kInteractive: return "interactive";
    case QueryClass::kBatch: return "batch";
    case QueryClass::kBestEffort: return "besteffort";
  }
  return "unknown";
}

AdmissionQueue::AdmissionQueue(const SchedulerOptions& options)
    : options_(options),
      admitted_(obs::DefaultMetrics().GetCounter("serve.queries.admitted")),
      shed_(obs::DefaultMetrics().GetCounter("serve.queries.shed")),
      depth_gauge_(obs::DefaultMetrics().GetGauge("serve.queue.depth")),
      level_gauge_(obs::DefaultMetrics().GetGauge("serve.degradation.level")) {
  for (size_t c = 0; c < kNumQueryClasses; ++c) {
    class_limits_[c] = DeriveClassLimit(options_.class_queue_limit[c],
                                        options_.queue_limit,
                                        static_cast<QueryClass>(c));
    shed_by_class_[c] = obs::DefaultMetrics().GetCounter(
        std::string("serve.queries.shed.") +
        QueryClassName(static_cast<QueryClass>(c)));
  }
}

Status AdmissionQueue::Offer(Ticket ticket, uint64_t* retry_after_ms) {
  const size_t c = static_cast<size_t>(ticket.cls);
  const uint64_t retry = RetryAfterMsHint();
  if (retry_after_ms != nullptr) *retry_after_ms = retry;
  const std::string hint = " retry_after_ms=" + std::to_string(retry);

  const char* reason = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const size_t depth = TotalDepthLocked();
    if (intake_closed_ || closed_) {
      reason = "server draining";
    } else if (depth >= options_.queue_limit) {
      reason = "admission queue full";
    } else if (queues_[c].size() >= class_limits_[c]) {
      reason = "class queue full";
    } else if (LevelForDepth(depth) >= DegradationLevel::kShedBestEffort &&
               ticket.cls == QueryClass::kBestEffort) {
      reason = "best-effort class shed under overload";
    } else {
      // Stride join rule: a class that was idle re-enters at the scheduler's
      // current virtual time instead of keeping its stale (low) pass —
      // otherwise a burst after idleness would win a long run of
      // consecutive dequeues and invert the priorities.
      if (queues_[c].empty()) {
        passes_[c] = std::max(passes_[c], global_pass_);
      }
      queues_[c].push_back(std::move(ticket));
      const size_t new_depth = depth + 1;
      depth_gauge_->Set(static_cast<int64_t>(new_depth));
      level_gauge_->Set(static_cast<int>(LevelForDepth(new_depth)));
    }
  }
  if (reason == nullptr) {
    admitted_->Increment();
    cv_.notify_one();
    return Status::OK();
  }
  shed_->Increment();
  shed_by_class_[c]->Increment();
  return Status::ResourceExhausted(
      std::string("serve: ") + reason + " (class=" + QueryClassName(ticket.cls) +
      ")" + hint);
}

bool AdmissionQueue::Take(Ticket* out) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return closed_ || TotalDepthLocked() > 0; });
  if (TotalDepthLocked() == 0) return false;  // closed_ and drained

  // Pick the non-empty class with the smallest pass; charge it its stride.
  size_t best = kNumQueryClasses;
  for (size_t c = 0; c < kNumQueryClasses; ++c) {
    if (queues_[c].empty()) continue;
    if (best == kNumQueryClasses || passes_[c] < passes_[best]) best = c;
  }
  *out = std::move(queues_[best].front());
  queues_[best].pop_front();
  // The dequeued class held the minimum pass, which is the scheduler's
  // virtual time — classes joining an empty queue start from here.
  global_pass_ = passes_[best];
  passes_[best] += kStrideScale / std::max<uint32_t>(1, options_.weights[best]);
  // When every queue empties, reset so a burst after full idleness starts
  // from a level field.
  const size_t depth = TotalDepthLocked();
  if (depth == 0) {
    passes_ = {0, 0, 0};
    global_pass_ = 0;
  }
  depth_gauge_->Set(static_cast<int64_t>(depth));
  level_gauge_->Set(static_cast<int>(LevelForDepth(depth)));
  return true;
}

void AdmissionQueue::CloseIntake() {
  std::lock_guard<std::mutex> lock(mu_);
  intake_closed_ = true;
}

void AdmissionQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    intake_closed_ = true;
    closed_ = true;
  }
  cv_.notify_all();
}

void AdmissionQueue::OnCompleted(uint64_t exec_ns) {
  // Racy EMA update is fine: this feeds a backoff hint, not an invariant.
  const uint64_t prev = ema_exec_ns_.load(std::memory_order_relaxed);
  const uint64_t next = prev == 0 ? exec_ns : (prev * 7 + exec_ns) / 8;
  ema_exec_ns_.store(next, std::memory_order_relaxed);
}

size_t AdmissionQueue::Depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return TotalDepthLocked();
}

size_t AdmissionQueue::DepthOf(QueryClass cls) const {
  std::lock_guard<std::mutex> lock(mu_);
  return queues_[static_cast<size_t>(cls)].size();
}

bool AdmissionQueue::IntakeClosed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return intake_closed_;
}

DegradationLevel AdmissionQueue::Level() const {
  std::lock_guard<std::mutex> lock(mu_);
  return LevelForDepth(TotalDepthLocked());
}

uint64_t AdmissionQueue::RetryAfterMsHint() const {
  uint64_t service_ns = ema_exec_ns_.load(std::memory_order_relaxed);
  if (service_ns == 0) service_ns = kDefaultServiceNs;
  const size_t workers = std::max<size_t>(1, options_.workers);
  const uint64_t depth = static_cast<uint64_t>(Depth());
  const uint64_t wait_ns = (depth / workers + 1) * service_ns;
  return std::clamp<uint64_t>(wait_ns / 1'000'000, kMinRetryMs, kMaxRetryMs);
}

size_t AdmissionQueue::TotalDepthLocked() const {
  size_t n = 0;
  for (const auto& q : queues_) n += q.size();
  return n;
}

DegradationLevel AdmissionQueue::LevelForDepth(size_t depth) const {
  const double occ = static_cast<double>(depth) /
                     static_cast<double>(std::max<size_t>(1, options_.queue_limit));
  if (occ >= options_.degrade_shed_best_effort) {
    return DegradationLevel::kShedBestEffort;
  }
  if (occ >= options_.degrade_shed_overhead) {
    return DegradationLevel::kShedOverhead;
  }
  if (occ >= options_.degrade_no_speculation) {
    return DegradationLevel::kNoSpeculation;
  }
  return DegradationLevel::kNormal;
}

}  // namespace serve
}  // namespace stark
