/// \file scheduler.h
/// Admission control and weighted fair scheduling for the serving layer.
///
/// Queries enter a bounded multi-class queue. Admission is all-or-nothing
/// at the front door: a query that does not fit (global bound, per-class
/// bound, or its class is being shed under overload) is rejected
/// immediately with Status::ResourceExhausted and a Retry-After hint —
/// the queue never grows without bound and a rejected client learns to back
/// off instead of timing out deep in the stack.
///
/// Dispatch uses stride scheduling across the classes: each class has a
/// weight, each dequeue charges the class `kStrideScale / weight`, and the
/// non-empty class with the smallest accumulated pass runs next. A heavy
/// batch class can saturate every executor slot only until an interactive
/// query arrives; it then jumps ahead at the next free slot, which is what
/// bounds the interactive p99 under mixed load.
#ifndef STARK_SERVE_SCHEDULER_H_
#define STARK_SERVE_SCHEDULER_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>

#include "common/macros.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace stark {
namespace serve {

/// Scheduling class of a query. Lower value = more important. Maps onto
/// Context::job_priority for the engine jobs a query launches.
enum class QueryClass : int {
  kInteractive = 0,  ///< point lookups, small filters — latency-sensitive
  kBatch = 1,        ///< heavy joins, aggregations — throughput work
  kBestEffort = 2,   ///< shed first under overload
};
inline constexpr size_t kNumQueryClasses = 3;
const char* QueryClassName(QueryClass cls);

/// Degradation ladder positions (serve.degradation.level gauge). Each level
/// includes everything above it. Derived from queue occupancy.
enum class DegradationLevel : int {
  kNormal = 0,
  kNoSpeculation = 1,   ///< speculative task copies off for served queries
  kShedOverhead = 2,    ///< per-query profiling/slow-log off, output capped
  kShedBestEffort = 3,  ///< best-effort class rejected at admission
};

struct SchedulerOptions {
  /// Executor slots the scheduler feeds (used for the Retry-After model).
  size_t workers = 4;
  /// Global queue bound; the hard limit behind every admission decision.
  size_t queue_limit = 64;
  /// Per-class bounds; 0 = derive (interactive: global, batch: 1/2,
  /// best-effort: 1/4) so background work cannot consume the whole queue.
  std::array<size_t, kNumQueryClasses> class_queue_limit = {0, 0, 0};
  /// Stride-scheduling weights (higher = more slots under contention).
  std::array<uint32_t, kNumQueryClasses> weights = {8, 2, 1};
  /// Queue-occupancy thresholds of the degradation ladder.
  double degrade_no_speculation = 0.50;
  double degrade_shed_overhead = 0.75;
  double degrade_shed_best_effort = 0.90;
};

/// One admitted unit of work, opaque to the scheduler.
struct Ticket {
  uint64_t id = 0;
  QueryClass cls = QueryClass::kInteractive;
  uint64_t enqueue_ns = 0;
  std::function<void()> run;
};

/// \brief The bounded multi-class admission queue (see file comment).
/// Thread-safe; producers Offer, executor threads Take in a loop.
class AdmissionQueue {
 public:
  explicit AdmissionQueue(const SchedulerOptions& options);
  STARK_DISALLOW_COPY_AND_ASSIGN(AdmissionQueue);

  /// Admits \p ticket or rejects it with Status::ResourceExhausted whose
  /// message carries a `retry_after_ms=<n>` hint (also returned through
  /// \p retry_after_ms when non-null). Rejection reasons: intake closed
  /// (draining), global bound, class bound, or class shed under overload.
  Status Offer(Ticket ticket, uint64_t* retry_after_ms = nullptr);

  /// Blocks for the next ticket by stride order. Returns false when the
  /// queue is closed and empty — the executor's exit signal.
  bool Take(Ticket* out);

  /// Stops admission (Offer rejects with "draining") but keeps Take
  /// serving what is already queued.
  void CloseIntake();

  /// Closes the queue entirely: Take drains what is left, then returns
  /// false. Implies CloseIntake.
  void Close();

  /// Completion feedback for the Retry-After model: exponential moving
  /// average of per-query service time.
  void OnCompleted(uint64_t exec_ns);

  size_t Depth() const;
  size_t DepthOf(QueryClass cls) const;
  bool IntakeClosed() const;

  /// Current rung of the degradation ladder, from instantaneous occupancy.
  DegradationLevel Level() const;

  /// The backoff hint attached to rejections: roughly (depth / workers) x
  /// mean service time, clamped to [1ms, 30s].
  uint64_t RetryAfterMsHint() const;

 private:
  size_t TotalDepthLocked() const;
  DegradationLevel LevelForDepth(size_t depth) const;

  const SchedulerOptions options_;
  std::array<size_t, kNumQueryClasses> class_limits_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::array<std::deque<Ticket>, kNumQueryClasses> queues_;
  std::array<uint64_t, kNumQueryClasses> passes_ = {0, 0, 0};
  /// Scheduler virtual time: pass of the most recently dequeued class.
  /// A class enqueueing into an empty queue joins at this pass (stride
  /// join rule), so idle classes cannot bank a stale low pass and later
  /// burst ahead of higher-priority work.
  uint64_t global_pass_ = 0;
  bool intake_closed_ = false;
  bool closed_ = false;

  std::atomic<uint64_t> ema_exec_ns_{0};

  obs::Counter* const admitted_;
  obs::Counter* const shed_;
  std::array<obs::Counter*, kNumQueryClasses> shed_by_class_;
  obs::Gauge* const depth_gauge_;
  obs::Gauge* const level_gauge_;
};

}  // namespace serve
}  // namespace stark

#endif  // STARK_SERVE_SCHEDULER_H_
