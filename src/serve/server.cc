#include "serve/server.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <utility>

#include "obs/flight_recorder.h"
#include "obs/profile.h"

namespace stark {
namespace serve {
namespace {

/// Lazy rows view of a dataset snapshot: events convert to PigRows only
/// when a statement actually consumes the relation (JOIN, DUMP, ...), so a
/// pure snapshot FILTER never pays the conversion.
class SnapshotRowsRDD final : public RDDImpl<piglet::PigRow> {
 public:
  SnapshotRowsRDD(Context* ctx, std::shared_ptr<const DatasetSnapshot> snap)
      : RDDImpl<piglet::PigRow>(ctx),
        snap_(std::move(snap)),
        parts_(std::max<size_t>(
            1, std::min(ctx->default_parallelism(),
                        std::max<size_t>(1, snap_->events->size() / 1024)))) {}

  size_t NumPartitions() const override { return parts_; }

  std::vector<piglet::PigRow> Compute(size_t p) const override {
    const std::vector<stream::StreamEvent>& events = *snap_->events;
    const size_t n = events.size();
    const size_t chunk = (n + parts_ - 1) / parts_;
    const size_t begin = std::min(p * chunk, n);
    const size_t end = std::min(begin + chunk, n);
    std::vector<piglet::PigRow> rows;
    rows.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) {
      rows.push_back(piglet::RowFromStreamEvent(events[i]));
    }
    return rows;
  }

 private:
  std::shared_ptr<const DatasetSnapshot> snap_;
  size_t parts_;
};

piglet::PigRelation MakeSnapshotRelation(
    Context* ctx, std::shared_ptr<const DatasetSnapshot> snap) {
  piglet::PigRelation rel;
  rel.schema = {"id", "category", "time", "wkt"};
  rel.spatialized = true;
  rel.snapshot = snap;
  rel.rdd = RDD<piglet::PigRow>(
      std::make_shared<SnapshotRowsRDD>(ctx, std::move(snap)));
  return rel;
}

/// Truncates DUMP payloads under degradation level >= kShedOverhead.
void TruncateOutput(std::string* output, size_t max_rows) {
  size_t rows = 0;
  for (size_t i = 0; i < output->size(); ++i) {
    if ((*output)[i] != '\n') continue;
    if (++rows >= max_rows) {
      output->resize(i + 1);
      output->append("... (output truncated under load)\n");
      return;
    }
  }
}

void RecordServeCancel(uint64_t query_id, const char* why) {
  obs::FlightRecorder& flight = obs::DefaultFlightRecorder();
  if (!flight.enabled()) return;
  obs::FlightEvent e;
  e.job = query_id;
  e.kind = obs::FlightEventKind::kCancel;
  std::snprintf(e.detail, sizeof(e.detail), "%s", why);
  flight.Record(e);
}

struct ServeMetrics {
  obs::Counter* submitted;
  obs::Counter* completed;
  obs::Counter* failed;
  obs::Counter* cancelled;
  obs::Counter* deadline_exceeded;
  obs::Counter* expired_in_queue;
  obs::Counter* drain_cancelled;
  obs::Gauge* active;
  obs::Gauge* sessions;
  std::array<obs::Histogram*, kNumQueryClasses> latency;
};

const ServeMetrics& Metrics() {
  static const ServeMetrics m = [] {
    obs::MetricsRegistry& reg = obs::DefaultMetrics();
    ServeMetrics mm;
    mm.submitted = reg.GetCounter("serve.queries.submitted");
    mm.completed = reg.GetCounter("serve.queries.completed");
    mm.failed = reg.GetCounter("serve.queries.failed");
    mm.cancelled = reg.GetCounter("serve.queries.cancelled");
    mm.deadline_exceeded = reg.GetCounter("serve.queries.deadline_exceeded");
    mm.expired_in_queue = reg.GetCounter("serve.queries.expired_in_queue");
    mm.drain_cancelled = reg.GetCounter("serve.queries.drain_cancelled");
    mm.active = reg.GetGauge("serve.active");
    mm.sessions = reg.GetGauge("serve.sessions");
    for (size_t c = 0; c < kNumQueryClasses; ++c) {
      mm.latency[c] = reg.GetHistogram(
          std::string("serve.latency.") +
          QueryClassName(static_cast<QueryClass>(c)) + ".ns");
    }
    return mm;
  }();
  return m;
}

}  // namespace

// ---------------------------------------------------------------------------
// Session

Session::Session(Server* server, uint64_t id)
    : server_(server),
      id_(id),
      ctx_(std::make_unique<Context>(server->engine_pool_)),
      interp_(std::make_unique<piglet::Interpreter>(ctx_.get(), &out_)) {
  deadline_ms_.store(server_->options().default_deadline_ms,
                     std::memory_order_relaxed);
  // Engine-level backpressure: every job this session launches passes the
  // server's admission check. Jobs started after the drain grace are
  // refused outright; under heavy overload (kShedOverhead+) best-effort
  // jobs are refused even mid-script, so an admitted-but-low-value query
  // cannot keep grabbing pool slots that interactive queries need.
  ctx_->set_admission_hook([this](const Context::JobAdmission& job) -> Status {
    if (server_->hard_drain_.load(std::memory_order_acquire)) {
      return Status::Cancelled("serve: server shutting down");
    }
    if (job.priority >= static_cast<int>(QueryClass::kBestEffort) &&
        server_->queue_.Level() >= DegradationLevel::kShedOverhead) {
      return Status::ResourceExhausted(
          "serve: best-effort job refused under overload retry_after_ms=" +
          std::to_string(server_->queue_.RetryAfterMsHint()));
    }
    return Status::OK();
  });
  interp_->set_session_mode(true);
  interp_->set_set_hook(
      [this](const std::string& key, double value) -> Result<bool> {
        if (key == "serve.class") {
          const int cls = static_cast<int>(value);
          if (cls < 0 || cls >= static_cast<int>(kNumQueryClasses) ||
              static_cast<double>(cls) != value) {
            return Status::InvalidArgument(
                "serve: serve.class must be 0 (interactive), 1 (batch) or 2 "
                "(best-effort)");
          }
          cls_.store(cls);
          return true;
        }
        if (key == "job.deadline_ms") {
          // Session-scoped: record the new deadline for subsequent Submits
          // (read lock-free from the client thread) and apply it to the
          // Context so the rest of the current script honors it. The hook
          // runs on the query worker under run_mu_, the only place ctx_ is
          // mutated.
          if (value < 0) {
            return Status::InvalidArgument(
                "piglet: job.deadline_ms must be >= 0");
          }
          const uint64_t ms = static_cast<uint64_t>(value);
          deadline_ms_.store(ms, std::memory_order_relaxed);
          ctx_->set_job_deadline_ms(ms);
          return true;
        }
        return false;
      });
  Metrics().sessions->Set(
      static_cast<int64_t>(++server_->open_sessions_));
}

Session::~Session() {
  Metrics().sessions->Set(
      static_cast<int64_t>(--server_->open_sessions_));
}

QueryResult Session::Run(const std::string& script) {
  return Submit(script).get();
}

std::future<QueryResult> Session::Submit(std::string script) {
  return server_->Submit(this, std::move(script));
}

// ---------------------------------------------------------------------------
// Server

Server::Server(Catalog* catalog, ServerOptions options)
    : catalog_(catalog),
      options_([&options] {
        options.scheduler.workers = options.query_threads;
        return options;
      }()),
      engine_pool_(std::make_shared<ThreadPool>(
          std::max<size_t>(1, options_.engine_threads))),
      queue_(options_.scheduler) {}

Server::~Server() { Shutdown(); }

Status Server::Start() {
  if (started_.exchange(true)) {
    return Status::InvalidArgument("serve: server already started");
  }
  exporter_ = obs::MetricsExporter::FromEnv();
  workers_.reserve(options_.query_threads);
  for (size_t i = 0; i < std::max<size_t>(1, options_.query_threads); ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

std::unique_ptr<Session> Server::OpenSession() {
  return std::unique_ptr<Session>(
      new Session(this, next_session_id_.fetch_add(1) + 1));
}

std::future<QueryResult> Server::Submit(Session* session, std::string script) {
  Metrics().submitted->Increment();
  auto req = std::make_shared<Request>();
  req->session = session;
  req->script = std::move(script);
  req->cls = session->query_class();
  req->deadline_ms = session->deadline_ms_.load(std::memory_order_relaxed);
  req->submit_ns = NowNs();
  req->token = std::make_shared<CancelToken>();
  req->promise = std::make_shared<std::promise<QueryResult>>();
  std::future<QueryResult> future = req->promise->get_future();

  Ticket ticket;
  ticket.id = next_query_id_.fetch_add(1) + 1;
  ticket.cls = req->cls;
  ticket.enqueue_ns = req->submit_ns;
  ticket.run = [this, req] { Execute(req); };

  uint64_t retry_after_ms = 0;
  Status admitted = queue_.Offer(std::move(ticket), &retry_after_ms);
  if (!admitted.ok()) {
    QueryResult shed;
    shed.status = std::move(admitted);
    shed.retry_after_ms = retry_after_ms;
    Finish(req, std::move(shed));
  }
  return future;
}

void Server::WorkerLoop() {
  Ticket ticket;
  while (queue_.Take(&ticket)) ticket.run();
}

void Server::Execute(const std::shared_ptr<Request>& req) {
  const ServeMetrics& m = Metrics();
  QueryResult result;
  result.queue_ns = NowNs() - req->submit_ns;

  if (hard_drain_.load(std::memory_order_acquire)) {
    result.status = Status::Cancelled("serve: server shutting down");
    RecordServeCancel(req->session->id(), "serve.drain");
    Finish(req, std::move(result));
    return;
  }
  if (req->deadline_ms > 0 &&
      result.queue_ns / 1'000'000 >= req->deadline_ms) {
    result.status = Status::DeadlineExceeded(
        "serve: deadline of " + std::to_string(req->deadline_ms) +
        "ms expired after " + std::to_string(result.queue_ns / 1'000'000) +
        "ms in the admission queue");
    m.expired_in_queue->Increment();
    RecordServeCancel(req->session->id(), "serve.deadline");
    Finish(req, std::move(result));
    return;
  }

  m.active->Set(static_cast<int64_t>(++active_));
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    inflight_.push_back(req->token);
  }
  const DegradationLevel level = queue_.Level();
  QueryResult run = RunScript(req, level);
  run.queue_ns = result.queue_ns;
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    inflight_.erase(std::remove(inflight_.begin(), inflight_.end(),
                                req->token),
                    inflight_.end());
  }
  m.active->Set(static_cast<int64_t>(--active_));
  queue_.OnCompleted(run.exec_ns);
  Finish(req, std::move(run));
}

QueryResult Server::RunScript(const std::shared_ptr<Request>& req,
                              DegradationLevel level) {
  Session* const s = req->session;
  std::lock_guard<std::mutex> run_lock(s->run_mu_);
  Context* const ctx = s->ctx_.get();
  s->out_.str("");
  s->out_.clear();

  QueryResult result;

  // Per-query engine setup on the session's private Context; everything is
  // restored before the next query on this session runs. The Context's
  // job_deadline_ms is per-query scratch derived from the session-scoped
  // deadline the request captured at submit (the session-scoped value
  // itself lives in Session::deadline_ms_, updated only by the SET hook).
  const SpeculationPolicy saved_spec = ctx->speculation_policy();
  if (level >= DegradationLevel::kNoSpeculation && saved_spec.enabled) {
    SpeculationPolicy off = saved_spec;
    off.enabled = false;
    ctx->set_speculation_policy(off);
  }
  uint64_t exec_deadline = 0;
  if (req->deadline_ms > 0) {
    // The deadline covers queue wait + execution: engine jobs get only
    // what is left of the budget.
    const uint64_t waited_ms = (NowNs() - req->submit_ns) / 1'000'000;
    exec_deadline = std::max<uint64_t>(
        1, req->deadline_ms > waited_ms ? req->deadline_ms - waited_ms : 1);
  }
  ctx->set_job_deadline_ms(exec_deadline);
  ctx->set_job_priority(static_cast<int>(req->cls));
  s->interp_->set_cancel_token(req->token);

  // Pin the newest snapshot of every dataset for the duration of the
  // script and expose each as a relation. Pins release when `pins` leaves
  // scope; rows/trees stay alive through the relation's shared_ptrs.
  std::vector<PinnedDataset> pins;
  for (const std::string& name : catalog_->ListDatasets()) {
    Result<PinnedDataset> pinned = catalog_->Pin(name);
    if (!pinned.ok()) continue;  // not yet published; skip
    PinnedDataset pin = std::move(pinned).ValueOrDie();
    result.epoch = std::max(result.epoch, pin.epoch());
    s->interp_->BindRelation(name, MakeSnapshotRelation(ctx, pin.state()));
    pins.push_back(std::move(pin));
  }

  const uint64_t exec_start = NowNs();
  result.status = s->interp_->RunScript(req->script);
  result.exec_ns = NowNs() - exec_start;
  result.output = s->out_.str();
  if (level >= DegradationLevel::kShedOverhead &&
      options_.degraded_dump_rows > 0) {
    TruncateOutput(&result.output, options_.degraded_dump_rows);
  }

  s->interp_->set_cancel_token(nullptr);
  ctx->set_job_priority(0);
  // No deadline restore needed: the next query on this session overwrites
  // the Context deadline from Session::deadline_ms_, which the SET hook
  // already updated if the script changed it.
  ctx->set_speculation_policy(saved_spec);

  if (result.status.IsCancelled()) {
    RecordServeCancel(s->id(), "serve.cancel");
  } else if (result.status.IsDeadlineExceeded()) {
    RecordServeCancel(s->id(), "serve.deadline");
  }
  return result;
}

void Server::Finish(const std::shared_ptr<Request>& req, QueryResult result) {
  const ServeMetrics& m = Metrics();
  if (result.status.ok()) {
    m.completed->Increment();
  } else if (result.status.IsCancelled()) {
    m.cancelled->Increment();
  } else if (result.status.IsDeadlineExceeded()) {
    m.deadline_exceeded->Increment();
  } else if (!result.status.IsResourceExhausted()) {
    m.failed->Increment();
  }
  // Shed queries are counted by the admission queue itself.
  m.latency[static_cast<size_t>(req->cls)]->Record(NowNs() - req->submit_ns);
  req->promise->set_value(std::move(result));
}

void Server::Shutdown() {
  if (!started_.load() || shutdown_done_.exchange(true)) return;
  draining_.store(true, std::memory_order_release);
  queue_.CloseIntake();

  // Give in-flight and already-admitted queries the grace period.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options_.drain_grace_ms);
  while ((active_.load() > 0 || queue_.Depth() > 0) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Cancel the stragglers: executing queries stop at their next task
  // checkpoint; queued-but-unstarted ones resolve as Cancelled without
  // running (hard_drain_).
  hard_drain_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    for (const std::shared_ptr<CancelToken>& token : inflight_) {
      token->RequestCancel();
      Metrics().drain_cancelled->Increment();
    }
  }

  queue_.Close();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();

  // Forensics + observability teardown, in order: flight-recorder dump
  // (post-mortem of the drain), final metrics export, slow-log quiesce.
  obs::DefaultFlightRecorder().AutoDump("serve.drain");
  if (exporter_ != nullptr) {
    exporter_->StopAndJoin();
    exporter_.reset();
  }
  obs::GlobalSlowLog().Quiesce();
}

uint64_t Server::NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace serve
}  // namespace stark
