/// \file stopwatch.h
/// Wall-clock timing helper used by benchmarks and examples.
#ifndef STARK_COMMON_STOPWATCH_H_
#define STARK_COMMON_STOPWATCH_H_

#include <chrono>

namespace stark {

/// Measures elapsed wall time from construction or the last Restart().
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since start as a double.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since start as a double.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace stark

#endif  // STARK_COMMON_STOPWATCH_H_
