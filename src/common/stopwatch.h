/// \file stopwatch.h
/// Wall-clock timing helper used by benchmarks and examples.
#ifndef STARK_COMMON_STOPWATCH_H_
#define STARK_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace stark {

/// Measures elapsed wall time from construction or the last Restart().
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since start as a double.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since start as a double.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed integral nanoseconds since start (the tracer/metrics unit).
  uint64_t ElapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// RAII timer reporting the scope's elapsed nanoseconds into any sink with
/// a `Record(uint64_t)` method (e.g. obs::Histogram) — the shared timing
/// idiom for benchmarks and the task tracer. A null sink disables it.
template <typename Sink>
class ScopedTimer {
 public:
  explicit ScopedTimer(Sink* sink) : sink_(sink) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (sink_ != nullptr) sink_->Record(stopwatch_.ElapsedNanos());
  }

 private:
  Sink* sink_;
  Stopwatch stopwatch_;
};

}  // namespace stark

#endif  // STARK_COMMON_STOPWATCH_H_
