/// \file serde.h
/// Minimal binary serialization streams used for persistent indexes
/// (STARK's "persist the index to disk/HDFS" mode; HDFS is substituted by
/// the local filesystem — see DESIGN.md).
#ifndef STARK_COMMON_SERDE_H_
#define STARK_COMMON_SERDE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace stark {

/// Append-only little-endian binary writer backed by an in-memory buffer.
class BinaryWriter {
 public:
  void WriteU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void WriteU32(uint32_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteI64(int64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteDouble(double v) { WriteRaw(&v, sizeof(v)); }
  void WriteBool(bool v) { WriteU8(v ? 1 : 0); }

  void WriteString(const std::string& s) {
    WriteU64(s.size());
    WriteRaw(s.data(), s.size());
  }

  void WriteRaw(const void* data, size_t n) {
    const char* p = static_cast<const char*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  const std::vector<char>& buffer() const { return buf_; }
  std::vector<char> TakeBuffer() { return std::move(buf_); }

 private:
  std::vector<char> buf_;
};

/// Sequential reader over a binary buffer; all reads are bounds-checked and
/// report IOError instead of reading out of range.
class BinaryReader {
 public:
  BinaryReader(const char* data, size_t size) : data_(data), size_(size) {}
  explicit BinaryReader(const std::vector<char>& buf)
      : BinaryReader(buf.data(), buf.size()) {}

  Result<uint8_t> ReadU8() {
    uint8_t v = 0;
    STARK_RETURN_NOT_OK(ReadRaw(&v, sizeof(v)));
    return v;
  }
  Result<uint32_t> ReadU32() {
    uint32_t v = 0;
    STARK_RETURN_NOT_OK(ReadRaw(&v, sizeof(v)));
    return v;
  }
  Result<uint64_t> ReadU64() {
    uint64_t v = 0;
    STARK_RETURN_NOT_OK(ReadRaw(&v, sizeof(v)));
    return v;
  }
  Result<int64_t> ReadI64() {
    int64_t v = 0;
    STARK_RETURN_NOT_OK(ReadRaw(&v, sizeof(v)));
    return v;
  }
  Result<double> ReadDouble() {
    double v = 0;
    STARK_RETURN_NOT_OK(ReadRaw(&v, sizeof(v)));
    return v;
  }
  Result<bool> ReadBool() {
    STARK_ASSIGN_OR_RETURN(uint8_t v, ReadU8());
    return v != 0;
  }

  Result<std::string> ReadString() {
    STARK_ASSIGN_OR_RETURN(uint64_t n, ReadU64());
    if (n > Remaining()) {
      return Status::IOError("truncated string in binary stream");
    }
    std::string s(data_ + pos_, n);
    pos_ += n;
    return s;
  }

  Status ReadRaw(void* out, size_t n) {
    if (n > Remaining()) {
      return Status::IOError("unexpected end of binary stream");
    }
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  size_t Remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// Serialization trait: specialize Serde<V> to make a payload type usable
/// with persistent indexes and checkpoints. Scalar and pair specializations
/// live in spatial_rdd/value_serde.h; Serde<STObject> in core/st_serde.h.
template <typename V>
struct Serde;

/// CRC-32 (IEEE 802.3 polynomial, the zlib/PNG one) of \p n bytes at
/// \p data. Pass a previous return value as \p seed to checksum a stream
/// incrementally. Used by the checkpoint format to detect truncated or
/// bit-flipped part files.
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

/// Writes \p buf to \p path, replacing any existing file.
Status WriteFileBytes(const std::string& path, const std::vector<char>& buf);

/// Reads the entire file at \p path.
Result<std::vector<char>> ReadFileBytes(const std::string& path);

}  // namespace stark

#endif  // STARK_COMMON_SERDE_H_
