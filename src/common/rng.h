/// \file rng.h
/// Deterministic pseudo-random number generation for workload synthesis.
#ifndef STARK_COMMON_RNG_H_
#define STARK_COMMON_RNG_H_

#include <cstdint>
#include <random>

namespace stark {

/// \brief Seedable RNG wrapper so that data generators, tests and benchmarks
/// are reproducible run-to-run.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Normal deviate with the given mean and standard deviation.
  double Normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace stark

#endif  // STARK_COMMON_RNG_H_
