/// \file thread_pool.h
/// Fixed-size worker pool. In the sparklet engine each worker thread plays
/// the role of a Spark executor: partitions are computed as tasks here.
#ifndef STARK_COMMON_THREAD_POOL_H_
#define STARK_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "common/status.h"

namespace stark {

/// \brief A simple FIFO thread pool with a blocking Submit/Wait interface.
class ThreadPool {
 public:
  /// Creates a pool with \p num_threads workers (>= 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  STARK_DISALLOW_COPY_AND_ASSIGN(ThreadPool);

  /// Index of the pool worker executing the calling thread, or -1 when
  /// called from a non-worker thread (e.g. the driver). Task tracers use
  /// this to attribute spans to executor lanes.
  static int CurrentWorkerIndex();

  /// Plain-value dispatch statistics (monotonic since construction).
  struct Stats {
    uint64_t tasks_executed = 0;
    uint64_t tasks_submitted = 0;
  };
  Stats GetStats() const {
    return {tasks_executed_.load(std::memory_order_relaxed),
            tasks_submitted_.load(std::memory_order_relaxed)};
  }

  /// Enqueues \p fn and returns a future for its completion.
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      STARK_CHECK(!shutdown_);
      queue_.emplace_back([task] { (*task)(); });
    }
    tasks_submitted_.fetch_add(1, std::memory_order_relaxed);
    cv_.notify_one();
    return fut;
  }

  /// Runs \p fn(i) for i in [0, n) across the pool and blocks until all
  /// complete, converting anything a task throws into a Status at the task
  /// boundary: the first failure is reported (a StatusError keeps its
  /// carried Status; other exceptions become UnknownError with their
  /// what() text) and every remaining task still runs. No exception ever
  /// crosses a worker-thread boundary, so one bad record cannot take down
  /// the process.
  Status TryParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Convenience wrapper over TryParallelFor for value-returning call
  /// sites: throws StatusError on the *calling* thread when any task
  /// failed.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop(int worker_index);

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
  std::atomic<uint64_t> tasks_executed_{0};
  std::atomic<uint64_t> tasks_submitted_{0};
};

}  // namespace stark

#endif  // STARK_COMMON_THREAD_POOL_H_
