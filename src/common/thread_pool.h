/// \file thread_pool.h
/// Fixed-size worker pool. In the sparklet engine each worker thread plays
/// the role of a Spark executor: partitions are computed as tasks here.
///
/// The pool survives the loss of an executor: a task that throws
/// WorkerKilledError (the fault layer's simulated executor crash) takes its
/// worker thread down, but the pool requeues the interrupted task at the
/// front of the queue and spawns a replacement worker, so the task re-runs
/// on a surviving (or fresh) executor — the in-process analogue of Spark
/// rescheduling tasks of a lost executor from lineage.
#ifndef STARK_COMMON_THREAD_POOL_H_
#define STARK_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "common/status.h"

namespace stark {

/// \brief Thrown by the `engine.worker.die` failpoint to simulate an
/// executor crash. Deliberately NOT derived from std::exception so that the
/// engine's task boundary (which converts std::exception into Status) does
/// not absorb it: it unwinds through the task body into the pool's worker
/// loop, which treats it as the death of that executor.
struct WorkerKilledError {};

/// \brief A simple FIFO thread pool with a blocking Submit/Wait interface.
class ThreadPool {
 public:
  /// Creates a pool with \p num_threads workers (>= 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  STARK_DISALLOW_COPY_AND_ASSIGN(ThreadPool);

  /// Index of the pool worker executing the calling thread, or -1 when
  /// called from a non-worker thread (e.g. the driver). Task tracers use
  /// this to attribute spans to executor lanes. Replacement workers spawned
  /// after an executor death get fresh indices (like new executor ids).
  static int CurrentWorkerIndex();

  /// Plain-value dispatch statistics (monotonic since construction).
  struct Stats {
    uint64_t tasks_executed = 0;
    uint64_t tasks_submitted = 0;
    uint64_t workers_died = 0;
    uint64_t workers_restarted = 0;
  };
  Stats GetStats() const {
    return {tasks_executed_.load(std::memory_order_relaxed),
            tasks_submitted_.load(std::memory_order_relaxed),
            workers_died_.load(std::memory_order_relaxed),
            workers_restarted_.load(std::memory_order_relaxed)};
  }

  /// Enqueues \p fn and returns a future for its completion.
  ///
  /// Note: packaged_task catches *all* exceptions into the future, so a
  /// WorkerKilledError raised inside a Submit()ed task surfaces at the
  /// future, not at the worker loop — executor-loss recovery only applies
  /// to SubmitDetached() tasks. The engine's job layer uses SubmitDetached.
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      STARK_CHECK(!shutdown_);
      queue_.emplace_back([task] { (*task)(); });
    }
    tasks_submitted_.fetch_add(1, std::memory_order_relaxed);
    cv_.notify_one();
    return fut;
  }

  /// Enqueues \p fn with no completion handle. The caller tracks completion
  /// itself (the engine uses JobControl's done accounting). Unlike Submit,
  /// a WorkerKilledError escaping \p fn reaches the worker loop, which
  /// requeues this exact task and replaces the dead worker.
  void SubmitDetached(std::function<void()> fn);

  /// Runs \p fn(i) for i in [0, n) across the pool and blocks until all
  /// complete, converting anything a task throws into a Status at the task
  /// boundary: the first failure is reported (a StatusError keeps its
  /// carried Status; other exceptions become UnknownError with their
  /// what() text) and every remaining task still runs. No exception ever
  /// crosses a worker-thread boundary, so one bad record cannot take down
  /// the process.
  Status TryParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Convenience wrapper over TryParallelFor for value-returning call
  /// sites: throws StatusError on the *calling* thread when any task
  /// failed.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// The configured degree of parallelism. Constant over the pool's life:
  /// a dead worker is replaced one-for-one, so this many workers are live
  /// (or being respawned) at any time.
  size_t num_threads() const { return num_threads_; }

 private:
  void WorkerLoop(int worker_index);

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
  size_t num_threads_ = 0;
  int next_worker_index_ = 0;  // guarded by mu_ after construction
  std::vector<std::thread> threads_;  // append-only; guarded by mu_
  std::atomic<uint64_t> tasks_executed_{0};
  std::atomic<uint64_t> tasks_submitted_{0};
  std::atomic<uint64_t> workers_died_{0};
  std::atomic<uint64_t> workers_restarted_{0};
};

}  // namespace stark

#endif  // STARK_COMMON_THREAD_POOL_H_
