#include "common/serde.h"

#include <cstdio>

namespace stark {

Status WriteFileBytes(const std::string& path, const std::vector<char>& buf) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open for writing: " + path);
  }
  size_t written = buf.empty() ? 0 : std::fwrite(buf.data(), 1, buf.size(), f);
  int rc = std::fclose(f);
  if (written != buf.size() || rc != 0) {
    return Status::IOError("short write: " + path);
  }
  return Status::OK();
}

Result<std::vector<char>> ReadFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open for reading: " + path);
  }
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < 0) {
    std::fclose(f);
    return Status::IOError("cannot stat: " + path);
  }
  std::vector<char> buf(static_cast<size_t>(size));
  size_t got = buf.empty() ? 0 : std::fread(buf.data(), 1, buf.size(), f);
  std::fclose(f);
  if (got != buf.size()) {
    return Status::IOError("short read: " + path);
  }
  return buf;
}

}  // namespace stark
