#include "common/serde.h"

#include <cstdio>

namespace stark {

namespace {

/// Byte-at-a-time CRC-32 table for the reflected IEEE polynomial.
const uint32_t* Crc32Table() {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t n, uint32_t seed) {
  const uint32_t* table = Crc32Table();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

Status WriteFileBytes(const std::string& path, const std::vector<char>& buf) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open for writing: " + path);
  }
  size_t written = buf.empty() ? 0 : std::fwrite(buf.data(), 1, buf.size(), f);
  int rc = std::fclose(f);
  if (written != buf.size() || rc != 0) {
    return Status::IOError("short write: " + path);
  }
  return Status::OK();
}

Result<std::vector<char>> ReadFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open for reading: " + path);
  }
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < 0) {
    std::fclose(f);
    return Status::IOError("cannot stat: " + path);
  }
  std::vector<char> buf(static_cast<size_t>(size));
  size_t got = buf.empty() ? 0 : std::fread(buf.data(), 1, buf.size(), f);
  std::fclose(f);
  if (got != buf.size()) {
    return Status::IOError("short read: " + path);
  }
  return buf;
}

}  // namespace stark
