#include "common/thread_pool.h"

#include <exception>

namespace stark {

namespace {

thread_local int current_worker_index = -1;

}  // namespace

int ThreadPool::CurrentWorkerIndex() { return current_worker_index; }

ThreadPool::ThreadPool(size_t num_threads) {
  STARK_CHECK(num_threads >= 1);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(static_cast<int>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::WorkerLoop(int worker_index) {
  current_worker_index = worker_index;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (n == 1) {
    fn(0);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    futures.push_back(Submit([&fn, i] { fn(i); }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace stark
