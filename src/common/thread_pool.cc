#include "common/thread_pool.h"

#include <exception>
#include <utility>

#include "obs/metrics.h"

namespace stark {

namespace {

thread_local int current_worker_index = -1;

}  // namespace

int ThreadPool::CurrentWorkerIndex() { return current_worker_index; }

ThreadPool::ThreadPool(size_t num_threads) : num_threads_(num_threads) {
  STARK_CHECK(num_threads >= 1);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    const int index = next_worker_index_++;
    threads_.emplace_back([this, index] { WorkerLoop(index); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    // From here on no dying worker respawns a replacement (it checks
    // shutdown_ under mu_), so threads_ is frozen and safe to walk
    // unlocked below. Queued tasks still drain before workers exit.
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::SubmitDetached(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    STARK_CHECK(!shutdown_);
    queue_.push_back(std::move(fn));
  }
  tasks_submitted_.fetch_add(1, std::memory_order_relaxed);
  cv_.notify_one();
}

void ThreadPool::WorkerLoop(int worker_index) {
  current_worker_index = worker_index;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (const WorkerKilledError&) {
      // Simulated executor crash: this worker is gone. Requeue the
      // interrupted task at the queue front so a surviving worker picks it
      // up next, then replace the dead executor (unless the pool itself is
      // shutting down, in which case the survivors drain the queue).
      workers_died_.fetch_add(1, std::memory_order_relaxed);
      static obs::Counter* const deaths =
          obs::DefaultMetrics().GetCounter("engine.worker.deaths");
      deaths->Increment();
      bool respawned = false;
      {
        std::lock_guard<std::mutex> lock(mu_);
        queue_.push_front(std::move(task));
        if (!shutdown_) {
          const int index = next_worker_index_++;
          threads_.emplace_back([this, index] { WorkerLoop(index); });
          respawned = true;
        }
      }
      cv_.notify_one();
      if (respawned) {
        workers_restarted_.fetch_add(1, std::memory_order_relaxed);
        static obs::Counter* const restarts =
            obs::DefaultMetrics().GetCounter("engine.worker.restarts");
        restarts->Increment();
      }
      return;
    }
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
  }
}

Status ThreadPool::TryParallelFor(size_t n,
                                  const std::function<void(size_t)>& fn) {
  if (n == 0) return Status::OK();
  std::mutex mu;
  Status first_error;
  // The task boundary: catch everything here, on the executing thread, and
  // record it as a Status instead of letting it escape through the future.
  const auto guarded = [&fn, &mu, &first_error](size_t i) {
    Status status;
    try {
      fn(i);
      return;
    } catch (const StatusError& e) {
      status = e.status();
    } catch (const WorkerKilledError&) {
      // Backstop: executor loss is only recoverable on the SubmitDetached
      // path; here the task is bound to a future the caller waits on.
      status = Status::UnknownError("worker killed outside a managed job");
    } catch (const std::exception& e) {
      status = Status::UnknownError(std::string("task threw: ") + e.what());
    } catch (...) {
      status = Status::UnknownError("task threw a non-std exception");
    }
    std::lock_guard<std::mutex> lock(mu);
    if (first_error.ok()) first_error = std::move(status);
  };
  if (n == 1) {
    guarded(0);
    return first_error;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    futures.push_back(Submit([&guarded, i] { guarded(i); }));
  }
  for (auto& f : futures) f.get();
  return first_error;
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  const Status status = TryParallelFor(n, fn);
  if (!status.ok()) throw StatusError(status);
}

}  // namespace stark
