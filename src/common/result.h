/// \file result.h
/// Result<T>: a Status plus a value on success (Arrow-style).
#ifndef STARK_COMMON_RESULT_H_
#define STARK_COMMON_RESULT_H_

#include <utility>
#include <variant>

#include "common/macros.h"
#include "common/status.h"

namespace stark {

/// \brief Either a value of type T or a non-OK Status.
///
/// Use ValueOrDie() in tests/examples where failure is a bug, and
/// STARK_ASSIGN_OR_RETURN in library code to propagate errors.
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding \p value.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a failed result from a non-OK status.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    STARK_DCHECK(!std::get<Status>(repr_).ok());
  }

  /// True iff a value is present.
  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The error status; Status::OK() when a value is present.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// Returns the contained value; aborts if this Result holds an error.
  const T& ValueOrDie() const& {
    STARK_CHECK(ok());
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    STARK_CHECK(ok());
    return std::get<T>(repr_);
  }
  T ValueOrDie() && {
    STARK_CHECK(ok());
    return std::move(std::get<T>(repr_));
  }

  /// Unchecked accessors used by STARK_ASSIGN_OR_RETURN after an ok() test.
  T& ValueUnsafe() & { return std::get<T>(repr_); }
  T ValueUnsafe() && { return std::move(std::get<T>(repr_)); }

  /// Returns the value, or \p alternative if this Result holds an error.
  T ValueOr(T alternative) const& {
    return ok() ? std::get<T>(repr_) : std::move(alternative);
  }

 private:
  std::variant<Status, T> repr_;
};

}  // namespace stark

#endif  // STARK_COMMON_RESULT_H_
