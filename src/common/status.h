/// \file status.h
/// Arrow/RocksDB-style Status object: the return type of every fallible
/// operation in the STARK library. Library code does not throw exceptions.
#ifndef STARK_COMMON_STATUS_H_
#define STARK_COMMON_STATUS_H_

#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

namespace stark {

/// Machine-readable error category carried by a non-OK Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kIOError = 2,
  kParseError = 3,
  kKeyError = 4,
  kNotImplemented = 5,
  kOutOfRange = 6,
  kUnknownError = 7,
  kCancelled = 8,
  kDeadlineExceeded = 9,
  kResourceExhausted = 10,
};

/// \brief Result of a fallible operation: either OK or a coded error message.
///
/// The OK state is represented by a null internal pointer so that returning
/// Status::OK() is free of allocation.
class Status {
 public:
  Status() noexcept = default;

  Status(StatusCode code, std::string msg)
      : state_(std::make_unique<State>(State{code, std::move(msg)})) {}

  Status(const Status& other)
      : state_(other.state_ ? std::make_unique<State>(*other.state_)
                            : nullptr) {}
  Status& operator=(const Status& other) {
    if (this != &other) {
      state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
    }
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Returns a success status.
  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status KeyError(std::string msg) {
    return Status(StatusCode::kKeyError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status UnknownError(std::string msg) {
    return Status(StatusCode::kUnknownError, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  /// Load shedding: the operation was refused up front because a bounded
  /// resource (admission queue, executor slots) is full. Retryable by
  /// design — the serving layer attaches a Retry-After hint to the message.
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }

  /// True iff the operation succeeded.
  bool ok() const { return state_ == nullptr; }

  StatusCode code() const {
    return state_ ? state_->code : StatusCode::kOk;
  }

  /// Human-readable error message; empty for OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->msg : kEmpty;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(CodeName(state_->code)) + ": " + state_->msg;
  }

 private:
  static const char* CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kIOError: return "IOError";
      case StatusCode::kParseError: return "ParseError";
      case StatusCode::kKeyError: return "KeyError";
      case StatusCode::kNotImplemented: return "NotImplemented";
      case StatusCode::kOutOfRange: return "OutOfRange";
      case StatusCode::kUnknownError: return "UnknownError";
      case StatusCode::kCancelled: return "Cancelled";
      case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
      case StatusCode::kResourceExhausted: return "ResourceExhausted";
    }
    return "UnknownError";
  }

  struct State {
    StatusCode code;
    std::string msg;
  };
  std::unique_ptr<State> state_;
};

/// \brief Exception carrying a Status across an API that cannot return one.
///
/// The engine's task boundary converts every worker-thread exception into a
/// Status; driver-side code that must signal failure through a
/// value-returning signature (RDD actions, ThreadPool::ParallelFor) throws
/// StatusError on the *driver* thread. Callers that prefer Status use the
/// Try* variants and never see an exception.
class StatusError : public std::runtime_error {
 public:
  explicit StatusError(Status status)
      : std::runtime_error(status.ToString()), status_(std::move(status)) {}

  const Status& status() const { return status_; }

 private:
  Status status_;
};

}  // namespace stark

#endif  // STARK_COMMON_STATUS_H_
