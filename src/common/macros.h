/// \file macros.h
/// Assertion and utility macros shared across the STARK library.
#ifndef STARK_COMMON_MACROS_H_
#define STARK_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

/// Aborts with a message when an internal invariant is violated. Used for
/// programmer errors only; user-facing failures are reported via Status.
#define STARK_CHECK(cond)                                                    \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "STARK_CHECK failed: %s at %s:%d\n", #cond,       \
                   __FILE__, __LINE__);                                      \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#ifdef NDEBUG
#define STARK_DCHECK(cond) \
  do {                     \
  } while (0)
#else
#define STARK_DCHECK(cond) STARK_CHECK(cond)
#endif

#define STARK_DISALLOW_COPY_AND_ASSIGN(TypeName) \
  TypeName(const TypeName&) = delete;            \
  TypeName& operator=(const TypeName&) = delete

/// Propagates a non-OK Status from an expression, Arrow-style.
#define STARK_RETURN_NOT_OK(expr)              \
  do {                                         \
    ::stark::Status _st = (expr);              \
    if (!_st.ok()) return _st;                 \
  } while (0)

/// Assigns the value of a Result expression to `lhs`, or propagates its error.
#define STARK_ASSIGN_OR_RETURN(lhs, rexpr)            \
  auto STARK_CONCAT_(_res, __LINE__) = (rexpr);       \
  if (!STARK_CONCAT_(_res, __LINE__).ok())            \
    return STARK_CONCAT_(_res, __LINE__).status();    \
  lhs = std::move(STARK_CONCAT_(_res, __LINE__)).ValueUnsafe()

#define STARK_CONCAT_IMPL_(a, b) a##b
#define STARK_CONCAT_(a, b) STARK_CONCAT_IMPL_(a, b)

#endif  // STARK_COMMON_MACROS_H_
