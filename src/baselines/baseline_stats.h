/// \file baseline_stats.h
/// Shared measurement record for the Figure-4 self-join comparison between
/// STARK and the reimplemented GeoSpark/SpatialSpark execution strategies.
#ifndef STARK_BASELINES_BASELINE_STATS_H_
#define STARK_BASELINES_BASELINE_STATS_H_

#include <cstddef>
#include <string>

namespace stark {

/// Timing/size breakdown of one self-join run.
struct BaselineStats {
  std::string system;   // "STARK", "GeoSpark-like", "SpatialSpark-like"
  std::string config;   // "none", "voronoi", "tile", "grid", "bsp"
  size_t input_size = 0;
  size_t result_pairs = 0;   // ordered pairs, identity excluded
  size_t replicated = 0;     // extra copies created by replication
  double partition_seconds = 0.0;
  double index_seconds = 0.0;
  double join_seconds = 0.0;
  double dedup_seconds = 0.0;
  double total_seconds = 0.0;
};

}  // namespace stark

#endif  // STARK_BASELINES_BASELINE_STATS_H_
