#include "baselines/spatialspark_like.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/stopwatch.h"
#include "geometry/predicates.h"

namespace stark {

namespace {

/// Index entry of the broadcast side: x-interval plus the object id.
struct XEntry {
  double min_x;
  double max_x;
  double min_y;
  double max_y;
  size_t id;
};

/// Window scan of \p sorted (ordered by min_x) for all partners of \p probe
/// within \p dist; ids are appended to \p sink as ordered pairs.
void ScanWindow(const std::vector<XEntry>& sorted, const XEntry& probe,
                const std::vector<STObject>& data, double dist,
                std::vector<std::pair<size_t, size_t>>* sink) {
  // Binary search for the first entry whose min_x could still overlap.
  const double lo = probe.min_x - dist;
  const double hi = probe.max_x + dist;
  auto it = std::lower_bound(
      sorted.begin(), sorted.end(), lo,
      [](const XEntry& e, double v) { return e.min_x < v; });
  // Entries starting before `lo` may still reach into the window; the
  // SpatialSpark-style scan walks backwards too. For point data max_x ==
  // min_x, so stepping back to the window start suffices.
  while (it != sorted.begin() && std::prev(it)->max_x >= lo) --it;
  for (; it != sorted.end() && it->min_x <= hi; ++it) {
    if (it->id == probe.id) continue;
    // 1-D filter passed; check y quickly, then the exact distance.
    if (it->min_y > probe.max_y + dist || it->max_y < probe.min_y - dist) {
      continue;
    }
    if (Distance(data[probe.id].geo(), data[it->id].geo()) <= dist) {
      sink->emplace_back(probe.id, it->id);
    }
  }
}

}  // namespace

BaselineStats SpatialSparkLikeSelfJoin(
    Context* ctx, const std::vector<STObject>& data, double max_distance,
    const SpatialSparkLikeOptions& options) {
  BaselineStats stats;
  stats.system = "SpatialSpark-like";
  stats.config = options.tiles == 0 ? "none" : "tile";
  stats.input_size = data.size();
  Stopwatch total;

  Stopwatch phase;
  std::vector<XEntry> entries(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    const Envelope& env = data[i].envelope();
    entries[i] = {env.min_x(), env.max_x(), env.min_y(), env.max_y(), i};
  }

  if (options.tiles == 0) {
    // Broadcast path: one globally sorted array (serial, like collecting to
    // the driver), probed in parallel with window scans.
    std::vector<XEntry> sorted = entries;
    std::sort(sorted.begin(), sorted.end(),
              [](const XEntry& a, const XEntry& b) {
                return a.min_x < b.min_x;
              });
    stats.index_seconds = phase.ElapsedSeconds();

    phase.Restart();
    const size_t tasks = ctx->pool().num_threads() * 4;
    const size_t chunk = (entries.size() + tasks - 1) / std::max<size_t>(tasks, 1);
    std::vector<std::vector<std::pair<size_t, size_t>>> results(tasks);
    ctx->pool().ParallelFor(tasks, [&](size_t t) {
      const size_t begin = t * chunk;
      const size_t end = std::min(begin + chunk, entries.size());
      for (size_t i = begin; i < end; ++i) {
        ScanWindow(sorted, entries[i], data, max_distance, &results[t]);
      }
    });
    stats.join_seconds = phase.ElapsedSeconds();

    size_t pairs = 0;
    for (const auto& r : results) pairs += r.size();
    stats.result_pairs = pairs;
    stats.total_seconds = total.ElapsedSeconds();
    return stats;
  }

  // Tile path: 2-D sort-tile partitioning (equi-depth x-slices, each cut
  // into equi-depth y-tiles, as SpatialSpark derives its tiles from a
  // sample of MBRs), replication of border objects into every overlapping
  // tile, tile-local window scans, then duplicate elimination.
  const size_t slices = std::max<size_t>(
      1, static_cast<size_t>(std::sqrt(static_cast<double>(options.tiles))));
  const size_t tiles_per_slice = (options.tiles + slices - 1) / slices;
  const size_t tiles = slices * tiles_per_slice;

  std::vector<XEntry> sorted = entries;
  std::sort(sorted.begin(), sorted.end(),
            [](const XEntry& a, const XEntry& b) { return a.min_x < b.min_x; });
  constexpr double kInf = std::numeric_limits<double>::infinity();
  // Equi-depth x-cuts.
  std::vector<double> x_cut(slices + 1);
  x_cut[0] = -kInf;
  x_cut[slices] = kInf;
  const size_t per_slice = (sorted.size() + slices - 1) / slices;
  for (size_t s = 1; s < slices; ++s) {
    const size_t idx = std::min(s * per_slice, sorted.size() - 1);
    x_cut[s] = sorted[idx].min_x;
  }
  // Per-slice equi-depth y-cuts.
  std::vector<std::vector<double>> y_cut(slices);
  for (size_t s = 0; s < slices; ++s) {
    const size_t begin = std::min(s * per_slice, sorted.size());
    const size_t end = std::min(begin + per_slice, sorted.size());
    std::vector<double> ys;
    ys.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) ys.push_back(sorted[i].min_y);
    std::sort(ys.begin(), ys.end());
    y_cut[s].assign(tiles_per_slice + 1, kInf);
    y_cut[s][0] = -kInf;
    const size_t per_tile = (ys.size() + tiles_per_slice - 1) /
                            std::max<size_t>(tiles_per_slice, 1);
    for (size_t t = 1; t < tiles_per_slice; ++t) {
      y_cut[s][t] = ys.empty()
                        ? kInf
                        : ys[std::min(t * per_tile, ys.size() - 1)];
    }
  }
  // Replicate each entry into every tile its halo-expanded MBR overlaps.
  std::vector<std::vector<XEntry>> tile_entries(tiles);
  for (const XEntry& e : entries) {
    for (size_t s = 0; s < slices; ++s) {
      if (e.min_x - max_distance >= x_cut[s + 1] ||
          e.max_x + max_distance < x_cut[s]) {
        continue;
      }
      for (size_t t = 0; t < tiles_per_slice; ++t) {
        if (e.min_y - max_distance >= y_cut[s][t + 1] ||
            e.max_y + max_distance < y_cut[s][t]) {
          continue;
        }
        tile_entries[s * tiles_per_slice + t].push_back(e);
        ++stats.replicated;
      }
    }
  }
  stats.replicated -= entries.size();  // first copy is not a replica
  stats.partition_seconds = phase.ElapsedSeconds();

  phase.Restart();
  ctx->pool().ParallelFor(tiles, [&](size_t t) {
    std::sort(tile_entries[t].begin(), tile_entries[t].end(),
              [](const XEntry& a, const XEntry& b) {
                return a.min_x < b.min_x;
              });
  });
  stats.index_seconds = phase.ElapsedSeconds();

  phase.Restart();
  std::vector<std::vector<std::pair<size_t, size_t>>> results(tiles);
  ctx->pool().ParallelFor(tiles, [&](size_t t) {
    for (const XEntry& probe : tile_entries[t]) {
      ScanWindow(tile_entries[t], probe, data, max_distance, &results[t]);
    }
  });
  stats.join_seconds = phase.ElapsedSeconds();

  phase.Restart();
  size_t total_pairs = 0;
  for (const auto& r : results) total_pairs += r.size();
  std::vector<std::pair<size_t, size_t>> all;
  all.reserve(total_pairs);
  for (auto& r : results) all.insert(all.end(), r.begin(), r.end());
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  stats.dedup_seconds = phase.ElapsedSeconds();

  stats.result_pairs = all.size();
  stats.total_seconds = total.ElapsedSeconds();
  return stats;
}

}  // namespace stark
