/// \file stark_selfjoin.h
/// STARK's side of the Figure-4 self-join comparison, instrumented with the
/// same BaselineStats record as the GeoSpark/SpatialSpark-like strategies.
#ifndef STARK_BASELINES_STARK_SELFJOIN_H_
#define STARK_BASELINES_STARK_SELFJOIN_H_

#include <vector>

#include "baselines/baseline_stats.h"
#include "core/stobject.h"
#include "engine/context.h"

namespace stark {

/// Which spatial partitioner the STARK run uses.
enum class StarkPartitionerChoice { kNone, kGrid, kBsp };

/// Which join execution strategy the STARK run uses (see docs/JOINS.md).
enum class StarkJoinMode {
  kLiveIndex,    ///< trees built inside the join (the classic plan)
  kCachedIndex,  ///< Index() first, join probes the cached trees
  kBroadcast,    ///< small side flattened into one tree, no pair enumeration
};

/// Options for the STARK self join.
struct StarkSelfJoinOptions {
  StarkPartitionerChoice partitioner = StarkPartitionerChoice::kNone;
  StarkJoinMode join_mode = StarkJoinMode::kLiveIndex;
  size_t index_order = 10;       // R-tree order (0 = no index)
  size_t grid_cells_per_dim = 8; // used when partitioner == kGrid
  size_t bsp_max_cost = 10'000;  // used when partitioner == kBsp
};

/// Self join with the withinDistance predicate via the STARK operators
/// (centroid partitioning + live indexing + extent-pruned partition pairs).
BaselineStats StarkSelfJoin(Context* ctx, const std::vector<STObject>& data,
                            double max_distance,
                            const StarkSelfJoinOptions& options);

}  // namespace stark

#endif  // STARK_BASELINES_STARK_SELFJOIN_H_
