/// \file spatialspark_like.h
/// Reimplementation of the SpatialSpark [2] execution strategy for the
/// paper's Figure-4 self join. SpatialSpark performs a broadcast join:
/// one side is collected, sorted by the x-extent of the envelopes, and every
/// probe scans its x-overlap window (a 1-D candidate filter). Its "Tile"
/// partitioner splits the data into sort-tile partitions first and joins
/// tile-locally with replication + dedup.
#ifndef STARK_BASELINES_SPATIALSPARK_LIKE_H_
#define STARK_BASELINES_SPATIALSPARK_LIKE_H_

#include <vector>

#include "baselines/baseline_stats.h"
#include "core/stobject.h"
#include "engine/context.h"

namespace stark {

/// Options for the SpatialSpark-like self join.
struct SpatialSparkLikeOptions {
  /// Number of sort-tile partitions; 0 disables partitioning (a single
  /// broadcast sort-merge window scan over the whole dataset).
  size_t tiles = 0;
};

/// Self join with the withinDistance predicate: emits (and counts) every
/// ordered pair (a, b), a != b, with Euclidean distance <= max_distance.
BaselineStats SpatialSparkLikeSelfJoin(Context* ctx,
                                       const std::vector<STObject>& data,
                                       double max_distance,
                                       const SpatialSparkLikeOptions& options);

}  // namespace stark

#endif  // STARK_BASELINES_SPATIALSPARK_LIKE_H_
