#include "baselines/geospark_like.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "geometry/predicates.h"
#include "index/rtree.h"

namespace stark {

namespace {

/// Voronoi partitioning: objects belong to the cell of their nearest seed.
/// For replication, an object is copied into every cell whose seed is within
/// (nearest + 2 * halo) — this guarantees that for any pair within `halo`
/// distance, each partner is present in the other's home cell.
struct VoronoiCells {
  std::vector<Coordinate> seeds;

  size_t Nearest(const Coordinate& c) const {
    size_t best = 0;
    double best_d = std::numeric_limits<double>::infinity();
    for (size_t s = 0; s < seeds.size(); ++s) {
      const double d = c.SquaredDistanceTo(seeds[s]);
      if (d < best_d) {
        best_d = d;
        best = s;
      }
    }
    return best;
  }

  std::vector<size_t> ReplicationTargets(const Coordinate& c,
                                         double halo) const {
    double nearest = std::numeric_limits<double>::infinity();
    for (const Coordinate& s : seeds) {
      nearest = std::min(nearest, std::sqrt(c.SquaredDistanceTo(s)));
    }
    const double limit = nearest + 2.0 * halo;
    std::vector<size_t> out;
    for (size_t s = 0; s < seeds.size(); ++s) {
      if (std::sqrt(c.SquaredDistanceTo(seeds[s])) <= limit) out.push_back(s);
    }
    return out;
  }
};

}  // namespace

BaselineStats GeoSparkLikeSelfJoin(Context* ctx,
                                   const std::vector<STObject>& data,
                                   double max_distance,
                                   const GeoSparkLikeOptions& options) {
  BaselineStats stats;
  stats.system = "GeoSpark-like";
  stats.config = options.voronoi_seeds == 0 ? "none" : "voronoi";
  stats.input_size = data.size();
  Stopwatch total;

  // --- Partitioning (with replication) -----------------------------------
  Stopwatch phase;
  const size_t num_cells = std::max<size_t>(options.voronoi_seeds, 1);
  std::vector<std::vector<size_t>> cell_members(num_cells);
  std::vector<size_t> home(data.size(), 0);
  if (options.voronoi_seeds == 0) {
    cell_members[0].resize(data.size());
    for (size_t i = 0; i < data.size(); ++i) cell_members[0][i] = i;
  } else {
    VoronoiCells cells;
    Rng rng(options.seed);
    cells.seeds.reserve(num_cells);
    for (size_t s = 0; s < num_cells; ++s) {
      const size_t pick =
          static_cast<size_t>(rng.UniformInt(0, data.size() - 1));
      cells.seeds.push_back(data[pick].Centroid());
    }
    for (size_t i = 0; i < data.size(); ++i) {
      const Coordinate c = data[i].Centroid();
      home[i] = cells.Nearest(c);
      for (size_t cell : cells.ReplicationTargets(c, max_distance)) {
        cell_members[cell].push_back(i);
        if (cell != home[i]) ++stats.replicated;
      }
    }
  }
  stats.partition_seconds = phase.ElapsedSeconds();

  // --- Per-cell R-tree construction ---------------------------------------
  // Without partitioning the single global tree is built serially (the
  // broadcast-index bottleneck); with partitioning trees build in parallel.
  phase.Restart();
  std::vector<RTree<size_t>> trees;
  trees.reserve(num_cells);
  for (size_t c = 0; c < num_cells; ++c) {
    trees.emplace_back(options.index_order);
  }
  auto build_cell = [&](size_t c) {
    std::vector<std::pair<Envelope, size_t>> entries;
    entries.reserve(cell_members[c].size());
    for (size_t id : cell_members[c]) {
      entries.emplace_back(data[id].envelope(), id);
    }
    trees[c].BulkLoad(std::move(entries));
  };
  if (options.voronoi_seeds == 0) {
    build_cell(0);
  } else {
    ctx->pool().ParallelFor(num_cells, build_cell);
  }
  stats.index_seconds = phase.ElapsedSeconds();

  // --- Local joins (duplication-based: every copy probes its cell) --------
  // GeoSpark's join result carries geometry pairs, not ids — duplicate
  // elimination later compares geometry values, so the join must emit the
  // matched geometries' coordinates.
  struct GeomPair {
    double ax, ay, bx, by;
    bool operator<(const GeomPair& o) const {
      if (ax != o.ax) return ax < o.ax;
      if (ay != o.ay) return ay < o.ay;
      if (bx != o.bx) return bx < o.bx;
      return by < o.by;
    }
    bool operator==(const GeomPair& o) const {
      return ax == o.ax && ay == o.ay && bx == o.bx && by == o.by;
    }
  };
  phase.Restart();
  std::vector<std::vector<GeomPair>> cell_pairs(num_cells);
  ctx->pool().ParallelFor(num_cells, [&](size_t c) {
    auto& sink = cell_pairs[c];
    for (size_t a : cell_members[c]) {
      const Envelope probe = data[a].envelope().Expanded(max_distance);
      const Coordinate ca = data[a].Centroid();
      trees[c].Query(probe, [&](const Envelope&, const size_t& b) {
        if (a == b) return;
        if (Distance(data[a].geo(), data[b].geo()) <= max_distance) {
          const Coordinate cb = data[b].Centroid();
          sink.push_back({ca.x, ca.y, cb.x, cb.y});
        }
      });
    }
  });
  stats.join_seconds = phase.ElapsedSeconds();

  // --- Duplicate elimination ----------------------------------------------
  // Replicated copies produce the same result pair in several cells; the
  // GeoSpark strategy must distinct() the full result set, comparing
  // geometry values (there are no stable tuple ids in its data model).
  phase.Restart();
  size_t total_pairs = 0;
  for (const auto& pairs : cell_pairs) total_pairs += pairs.size();
  std::vector<GeomPair> all;
  all.reserve(total_pairs);
  for (auto& pairs : cell_pairs) {
    all.insert(all.end(), pairs.begin(), pairs.end());
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  stats.dedup_seconds = phase.ElapsedSeconds();

  stats.result_pairs = all.size();
  stats.total_seconds = total.ElapsedSeconds();
  return stats;
}

}  // namespace stark
