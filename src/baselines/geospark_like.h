/// \file geospark_like.h
/// Reimplementation of the GeoSpark [3] execution strategy for the paper's
/// Figure-4 self join: the dataset is partitioned with *replication* (every
/// object is copied into each partition its halo envelope overlaps), each
/// partition is joined locally over a per-partition R-tree, and duplicate
/// result pairs are eliminated afterwards — the strategy STARK's
/// centroid-assignment + extents design avoids (see DESIGN.md).
#ifndef STARK_BASELINES_GEOSPARK_LIKE_H_
#define STARK_BASELINES_GEOSPARK_LIKE_H_

#include <vector>

#include "baselines/baseline_stats.h"
#include "core/stobject.h"
#include "engine/context.h"

namespace stark {

/// Options for the GeoSpark-like self join.
struct GeoSparkLikeOptions {
  /// Number of Voronoi seed cells; 0 disables spatial partitioning (one
  /// global partition whose index is built serially, as a broadcast-style
  /// join would).
  size_t voronoi_seeds = 0;
  /// R-tree node capacity.
  size_t index_order = 10;
  /// Seed for the Voronoi sample.
  uint64_t seed = 7;
};

/// Self join with the withinDistance predicate: emits (and counts) every
/// ordered pair (a, b), a != b, with Euclidean distance <= max_distance.
BaselineStats GeoSparkLikeSelfJoin(Context* ctx,
                                   const std::vector<STObject>& data,
                                   double max_distance,
                                   const GeoSparkLikeOptions& options);

}  // namespace stark

#endif  // STARK_BASELINES_GEOSPARK_LIKE_H_
