#include "baselines/stark_selfjoin.h"

#include <memory>

#include "common/stopwatch.h"
#include "partition/bsp_partitioner.h"
#include "partition/grid_partitioner.h"
#include "spatial_rdd/join.h"
#include "spatial_rdd/spatial_rdd.h"

namespace stark {

BaselineStats StarkSelfJoin(Context* ctx, const std::vector<STObject>& data,
                            double max_distance,
                            const StarkSelfJoinOptions& options) {
  BaselineStats stats;
  stats.system = "STARK";
  stats.input_size = data.size();
  Stopwatch total;

  std::vector<std::pair<STObject, int64_t>> pairs;
  pairs.reserve(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    pairs.emplace_back(data[i], static_cast<int64_t>(i));
  }
  SpatialRDD<int64_t> rdd = SpatialRDD<int64_t>::FromVector(ctx,
                                                            std::move(pairs));

  Envelope universe;
  for (const STObject& obj : data) universe.ExpandToInclude(obj.envelope());

  Stopwatch phase;
  switch (options.partitioner) {
    case StarkPartitionerChoice::kNone:
      stats.config = "none";
      break;
    case StarkPartitionerChoice::kGrid: {
      stats.config = "grid";
      auto grid = std::make_shared<GridPartitioner>(
          universe, options.grid_cells_per_dim);
      rdd = rdd.PartitionBy(std::move(grid));
      break;
    }
    case StarkPartitionerChoice::kBsp: {
      stats.config = "bsp";
      std::vector<Coordinate> centroids;
      centroids.reserve(data.size());
      for (const STObject& obj : data) centroids.push_back(obj.Centroid());
      BSPartitioner::Options bsp_options;
      bsp_options.max_cost = options.bsp_max_cost;
      auto bsp = std::make_shared<BSPartitioner>(universe, centroids,
                                                 bsp_options);
      rdd = rdd.PartitionBy(std::move(bsp));
      break;
    }
  }
  stats.partition_seconds = phase.ElapsedSeconds();

  phase.Restart();
  JoinOptions join_options;
  join_options.index_order = options.index_order;
  rdd = rdd.Cache();
  // Project to id pairs inside the join tasks (the payload is the id), as
  // a Spark program would map the join output; identity matches are
  // excluded like in the baselines.
  using Element = std::pair<STObject, int64_t>;
  const auto project = [](const Element& l, const Element& r) {
    return std::pair<int64_t, int64_t>(l.second, r.second);
  };
  const auto non_identity = [](const std::pair<int64_t, int64_t>& p) {
    return p.first != p.second;
  };
  const JoinPredicate pred = JoinPredicate::WithinDistance(max_distance);
  RDD<std::pair<int64_t, int64_t>> joined = [&] {
    switch (options.join_mode) {
      case StarkJoinMode::kCachedIndex: {
        stats.config += "+cached-index";
        IndexedSpatialRDD<int64_t> indexed = rdd.Index(options.index_order);
        // Materialize the cached trees outside the timed join phase — the
        // variant measures what a join costs once the index already exists.
        indexed.trees().Count();
        phase.Restart();
        return SpatialJoinProject(indexed, rdd, pred, join_options, project)
            .Filter(non_identity);
      }
      case StarkJoinMode::kBroadcast:
        stats.config += "+broadcast";
        // A self join always has a "small enough" side; force the
        // broadcast plan to measure it against pair enumeration.
        join_options.broadcast_threshold = data.size();
        return SpatialJoinProject(rdd, rdd, pred, join_options, project)
            .Filter(non_identity);
      case StarkJoinMode::kLiveIndex:
        break;
    }
    return SpatialJoinProject(rdd, rdd, pred, join_options, project)
        .Filter(non_identity);
  }();
  stats.result_pairs = joined.Count();
  stats.join_seconds = phase.ElapsedSeconds();

  stats.total_seconds = total.ElapsedSeconds();
  return stats;
}

}  // namespace stark
