#include "baselines/stark_selfjoin.h"

#include <memory>

#include "common/stopwatch.h"
#include "partition/bsp_partitioner.h"
#include "partition/grid_partitioner.h"
#include "spatial_rdd/join.h"
#include "spatial_rdd/spatial_rdd.h"

namespace stark {

BaselineStats StarkSelfJoin(Context* ctx, const std::vector<STObject>& data,
                            double max_distance,
                            const StarkSelfJoinOptions& options) {
  BaselineStats stats;
  stats.system = "STARK";
  stats.input_size = data.size();
  Stopwatch total;

  std::vector<std::pair<STObject, int64_t>> pairs;
  pairs.reserve(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    pairs.emplace_back(data[i], static_cast<int64_t>(i));
  }
  SpatialRDD<int64_t> rdd = SpatialRDD<int64_t>::FromVector(ctx,
                                                            std::move(pairs));

  Envelope universe;
  for (const STObject& obj : data) universe.ExpandToInclude(obj.envelope());

  Stopwatch phase;
  switch (options.partitioner) {
    case StarkPartitionerChoice::kNone:
      stats.config = "none";
      break;
    case StarkPartitionerChoice::kGrid: {
      stats.config = "grid";
      auto grid = std::make_shared<GridPartitioner>(
          universe, options.grid_cells_per_dim);
      rdd = rdd.PartitionBy(std::move(grid));
      break;
    }
    case StarkPartitionerChoice::kBsp: {
      stats.config = "bsp";
      std::vector<Coordinate> centroids;
      centroids.reserve(data.size());
      for (const STObject& obj : data) centroids.push_back(obj.Centroid());
      BSPartitioner::Options bsp_options;
      bsp_options.max_cost = options.bsp_max_cost;
      auto bsp = std::make_shared<BSPartitioner>(universe, centroids,
                                                 bsp_options);
      rdd = rdd.PartitionBy(std::move(bsp));
      break;
    }
  }
  stats.partition_seconds = phase.ElapsedSeconds();

  phase.Restart();
  JoinOptions join_options;
  join_options.index_order = options.index_order;
  rdd = rdd.Cache();
  // Project to id pairs inside the join tasks (the payload is the id), as
  // a Spark program would map the join output; identity matches are
  // excluded like in the baselines.
  using Element = std::pair<STObject, int64_t>;
  auto joined =
      SpatialJoinProject(rdd, rdd, JoinPredicate::WithinDistance(max_distance),
                         join_options,
                         [](const Element& l, const Element& r) {
                           return std::pair<int64_t, int64_t>(l.second,
                                                              r.second);
                         })
          .Filter([](const std::pair<int64_t, int64_t>& p) {
            return p.first != p.second;
          });
  stats.result_pairs = joined.Count();
  stats.join_seconds = phase.ElapsedSeconds();

  stats.total_seconds = total.ElapsedSeconds();
  return stats;
}

}  // namespace stark
