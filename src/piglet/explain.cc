#include "piglet/explain.h"

#include <cstdio>

namespace stark {
namespace piglet {

namespace {

std::string FormatNumber(double v) {
  char buf[32];
  if (v == static_cast<double>(static_cast<long long>(v))) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%g", v);
  }
  return buf;
}

std::string FormatLiteral(const PigValue& v) {
  if (std::holds_alternative<int64_t>(v)) {
    return std::to_string(std::get<int64_t>(v));
  }
  if (std::holds_alternative<double>(v)) {
    return FormatNumber(std::get<double>(v));
  }
  return "'" + std::get<std::string>(v) + "'";
}

std::string PredicateKeyword(PredicateType pred) {
  switch (pred) {
    case PredicateType::kIntersects: return "INTERSECTS";
    case PredicateType::kContains: return "CONTAINS";
    case PredicateType::kContainedBy: return "CONTAINEDBY";
    case PredicateType::kWithinDistance: return "WITHINDISTANCE";
  }
  return "?";
}

std::string FormatSpatialPred(const Expr& e) {
  std::string out = PredicateKeyword(e.pred);
  out += "('" + e.query->geo().ToWkt() + "'";
  if (e.pred == PredicateType::kWithinDistance) {
    out += ", " + FormatNumber(e.max_distance);
  }
  if (e.query->HasTime()) {
    out += ", " + std::to_string(e.query->time()->start()) + ", " +
           std::to_string(e.query->time()->end());
  }
  out += ")";
  return out;
}

}  // namespace

std::string FormatExpr(const Expr& expr) {
  switch (expr.kind) {
    case Expr::Kind::kCompare:
      return expr.column + " " + expr.op + " " + FormatLiteral(expr.literal);
    case Expr::Kind::kAnd:
      return "(" + FormatExpr(*expr.lhs) + " AND " + FormatExpr(*expr.rhs) +
             ")";
    case Expr::Kind::kOr:
      return "(" + FormatExpr(*expr.lhs) + " OR " + FormatExpr(*expr.rhs) +
             ")";
    case Expr::Kind::kNot:
      return "NOT " + FormatExpr(*expr.lhs);
    case Expr::Kind::kSpatialPred:
      return FormatSpatialPred(expr);
  }
  return "?";
}

std::string FormatStatement(const Statement& s) {
  switch (s.kind) {
    case Statement::Kind::kLoad:
      return s.target + " = LOAD '" + s.path + "';";
    case Statement::Kind::kSpatialize:
      return s.target + " = SPATIALIZE " + s.input + ";";
    case Statement::Kind::kFilter:
      return s.target + " = FILTER " + s.input + " BY " +
             FormatExpr(*s.filter) + ";";
    case Statement::Kind::kPartition: {
      std::string out = s.target + " = PARTITION " + s.input + " BY " +
                        (s.partitioner == PartitionerKind::kGrid ? "GRID"
                                                                 : "BSP") +
                        "(" + FormatNumber(s.partitioner_param) + ")";
      if (s.time_buckets > 0) {
        out += " TIME(" + std::to_string(s.time_buckets) + ")";
      }
      return out + ";";
    }
    case Statement::Kind::kIndex:
      return s.target + " = INDEX " + s.input + " ORDER " +
             std::to_string(s.index_order) + ";";
    case Statement::Kind::kJoin: {
      std::string out = s.target + " = JOIN " + s.input + ", " + s.input2 +
                        " ON " + PredicateKeyword(s.join_pred);
      if (s.join_pred == PredicateType::kWithinDistance) {
        out += "(" + FormatNumber(s.join_distance) + ")";
      }
      return out + ";";
    }
    case Statement::Kind::kKnn:
      return s.target + " = KNN " + s.input + " QUERY '" +
             s.knn_query->geo().ToWkt() + "' K " + std::to_string(s.knn_k) +
             ";";
    case Statement::Kind::kCluster:
      return s.target + " = CLUSTER " + s.input + " USING DBSCAN(" +
             FormatNumber(s.dbscan_eps) + ", " +
             std::to_string(s.dbscan_min_pts) + ") GRID " +
             std::to_string(s.cluster_grid) + ";";
    case Statement::Kind::kAggregate:
      return s.target + " = AGGREGATE " + s.input + " BY " +
             s.aggregate_column + " COUNT;";
    case Statement::Kind::kLimit:
      return s.target + " = LIMIT " + s.input + " " +
             std::to_string(s.limit) + ";";
    case Statement::Kind::kDump:
      return "DUMP " + s.input + ";";
    case Statement::Kind::kStore:
      return "STORE " + s.input + " INTO '" + s.path + "';";
    case Statement::Kind::kDescribe:
      return "DESCRIBE " + s.input + ";";
    case Statement::Kind::kSet:
      return "SET " + s.set_key + " " + FormatNumber(s.set_value) + ";";
    case Statement::Kind::kStream: {
      std::string out = "STREAM " + s.target + " FROM ";
      if (s.stream_source == StreamSourceKind::kGenerator) {
        out += "GENERATOR(" + std::to_string(s.gen_count) + ", " +
               std::to_string(s.gen_seed) + ", " +
               std::to_string(s.gen_step) + ")";
      } else {
        out += "TAIL('" + s.path + "')";
      }
      return out + ";";
    }
    case Statement::Kind::kWindow: {
      std::string out = s.target + " = WINDOW " + s.input + " SIZE " +
                        std::to_string(s.window_size);
      if (s.window_slide > 0) {
        out += " SLIDE " + std::to_string(s.window_slide);
      }
      if (s.window_lateness > 0) {
        out += " LATENESS " + std::to_string(s.window_lateness);
      }
      return out + ";";
    }
    case Statement::Kind::kPattern: {
      std::string out = s.target + " = PATTERN " + s.input + " ";
      auto quote_list = [&s]() {
        std::string list;
        for (size_t i = 0; i < s.pattern_categories.size(); ++i) {
          if (i > 0) list += ", ";
          list += "'" + s.pattern_categories[i] + "'";
        }
        return list;
      };
      switch (s.pattern_kind) {
        case StreamPatternKind::kSequence:
          out += "SEQ " + quote_list();
          if (s.pattern_within > 0) {
            out += " WITHIN " + std::to_string(s.pattern_within);
          }
          break;
        case StreamPatternKind::kAbsence:
          out += "ABSENT " + quote_list();
          break;
        case StreamPatternKind::kCount:
          out += "COUNT " + quote_list() + " " + s.pattern_cmp + " " +
                 std::to_string(s.pattern_threshold);
          break;
      }
      if (s.pattern_region.has_value()) {
        out += " WHERE " + PredicateKeyword(s.pattern_region_pred) + "('" +
               s.pattern_region->geo().ToWkt() + "'";
        if (s.pattern_region_pred == PredicateType::kWithinDistance) {
          out += ", " + FormatNumber(s.pattern_region_distance);
        }
        if (s.pattern_region->HasTime()) {
          out += ", " + std::to_string(s.pattern_region->time()->start()) +
                 ", " + std::to_string(s.pattern_region->time()->end());
        }
        out += ")";
      }
      return out + ";";
    }
    case Statement::Kind::kEmit:
      return "EMIT " + s.input + ";";
  }
  return "?;";
}

std::string FormatProgram(const Program& program) {
  std::string out;
  for (const Statement& s : program.statements) {
    out += FormatStatement(s);
    out += '\n';
  }
  return out;
}

std::string FormatAnalyzeReport(const AnalyzeReport& report) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "EXPLAIN ANALYZE (total %.3f ms)\n",
                report.total_ms);
  std::string out = buf;
  out += "  op    wall_ms       rows  parts  statement\n";
  for (size_t i = 0; i < report.operators.size(); ++i) {
    const OperatorProfile& op = report.operators[i];
    std::string rows = op.produced_relation ? std::to_string(op.rows_out) : "-";
    std::string parts =
        op.produced_relation ? std::to_string(op.num_partitions) : "-";
    std::snprintf(buf, sizeof(buf), "  %2zu %10.3f %10s %6s  ", i + 1,
                  op.wall_ms, rows.c_str(), parts.c_str());
    out += buf;
    out += op.statement;
    const QueryStats::Snapshot& f = op.filter;
    if (f.partitions_pruned + f.partitions_scanned + f.candidates +
            f.results >
        0) {
      std::snprintf(buf, sizeof(buf),
                    "  [pruned=%zu scanned=%zu candidates=%zu results=%zu]",
                    f.partitions_pruned, f.partitions_scanned, f.candidates,
                    f.results);
      out += buf;
    }
    out += '\n';
    // QueryProfile job tree for this operator: one indented line per
    // engine job the statement ran (rows/bytes/time/retries per stage).
    for (const obs::ProfileNode& job : op.profile.children) {
      std::string tree = obs::FormatProfileTree(job);
      size_t start = 0;
      while (start < tree.size()) {
        size_t end = tree.find('\n', start);
        if (end == std::string::npos) end = tree.size();
        out += "        ";
        out.append(tree, start, end - start);
        out += '\n';
        start = end + 1;
      }
    }
  }
  return out;
}

}  // namespace piglet
}  // namespace stark
