/// \file interpreter.h
/// Executes Piglet programs over the sparklet engine and the STARK spatial
/// operators — the C++ counterpart of the Piglet engine demoed in §4.
#ifndef STARK_PIGLET_INTERPRETER_H_
#define STARK_PIGLET_INTERPRETER_H_

#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "engine/job_control.h"
#include "engine/rdd.h"
#include "partition/partitioner.h"
#include "piglet/ast.h"
#include "piglet/explain.h"
#include "piglet/optimizer.h"
#include "spatial_rdd/query_stats.h"
#include "stream/stream_context.h"

namespace stark {

namespace serve {
struct DatasetSnapshot;
}  // namespace serve

namespace piglet {

/// One tuple flowing through a Piglet pipeline: dynamic fields plus the
/// optional spatio-temporal key created by SPATIALIZE.
struct PigRow {
  std::vector<PigValue> fields;
  std::optional<STObject> st;
};

/// A named relation: schema, data, and spatial execution metadata.
struct PigRelation {
  std::vector<std::string> schema;
  RDD<PigRow> rdd;
  std::shared_ptr<SpatialPartitioner> partitioner;
  /// Live-index order for spatial filters; 0 = no indexing (§2.2).
  size_t index_order = 0;
  bool spatialized = false;
  /// Non-null for serving-layer relations bound to a pinned dataset
  /// snapshot: spatial FILTERs then probe the snapshot's prebuilt packed
  /// R-tree directly instead of building a live index per query.
  std::shared_ptr<const serve::DatasetSnapshot> snapshot;
};

/// The canonical event -> row conversion shared by the serving layer's
/// snapshot relations and its snapshot filter path (schema: id, category,
/// time, wkt — same as LOAD).
PigRow RowFromStreamEvent(const stream::StreamEvent& event);

/// Renders one field value ("42", "3.5", "text").
std::string FormatPigValue(const PigValue& value);

/// A STREAM statement's source definition, pending an EMIT.
struct StreamDef {
  StreamSourceKind source = StreamSourceKind::kGenerator;
  int64_t gen_count = 1000;
  int64_t gen_seed = 42;
  int64_t gen_step = 1;
  std::string path;  // TAIL
};

/// A WINDOW statement: event-time windowing over a named stream.
struct WindowDef {
  std::string stream;
  stream::WindowSpec spec;
  int64_t lateness = 0;
};

/// A PATTERN statement: a CEP operator over a named window.
struct PatternDef {
  std::string window;
  stream::PatternSpec spec;
};

/// \brief Interprets Piglet statements against a Context.
///
/// DUMP/DESCRIBE output goes to the stream passed at construction, so tests
/// and the web-frontend substitute (the CLI example) can capture it.
class Interpreter {
 public:
  Interpreter(Context* ctx, std::ostream* out);

  /// Parses and runs a full script.
  Status RunScript(const std::string& source);

  /// Parses, optimizes (see piglet/optimizer.h) and runs a script. Note
  /// that dead-code elimination removes assignments without a DUMP/STORE/
  /// DESCRIBE consumer, so scripts run this way should end in a sink.
  Status RunScriptOptimized(const std::string& source,
                            OptimizerReport* report = nullptr);

  /// EXPLAIN ANALYZE: runs the script, materializing each produced
  /// relation immediately so per-operator wall time, row counts and
  /// filter-pruning stats can be attributed to the statement that caused
  /// them. \p report receives one OperatorProfile per executed statement
  /// (render with FormatAnalyzeReport). On error, profiles for the
  /// statements that did run are still filled in.
  Status RunScriptAnalyze(const std::string& source, AnalyzeReport* report);

  /// Runs an already-parsed program.
  Status Run(const Program& program);

  /// Installs a Ctrl-C-style cancellation token: checked between
  /// statements (a cancelled script returns Status::Cancelled) and passed
  /// to the Context so the job running *within* a statement stops at its
  /// next task checkpoint. Pass nullptr to detach.
  void set_cancel_token(std::shared_ptr<CancelToken> token);

  /// Looks up a relation produced by a previous statement (for embedding).
  Result<const PigRelation*> relation(const std::string& name) const;

  /// Binds \p rel under \p name as if a statement had produced it. The
  /// serving layer uses this to expose pinned dataset snapshots to each
  /// query; a later script assignment to the same name shadows it.
  void BindRelation(const std::string& name, PigRelation rel);

  /// Session mode (serving layer): SET keys that mutate *process-global*
  /// state (obs.slow_task_ms, obs.slow_query_ms) are rejected so one
  /// client cannot change another client's observability. Per-context keys
  /// (job.*, obs.profile) stay available — each session owns its Context.
  void set_session_mode(bool on) { session_mode_ = on; }

  /// First-chance handler for SET statements. Returns true when the key
  /// was consumed (e.g. the server's `serve.class`), false to fall through
  /// to the built-in keys, or an error to fail the statement.
  using SetHook = std::function<Result<bool>(const std::string& key,
                                             double value)>;
  void set_set_hook(SetHook hook) { set_hook_ = std::move(hook); }

 private:
  Status Execute(const Statement& stmt);
  Status ExecuteImpl(const Statement& stmt);
  Result<PigRelation> ExecLoad(const Statement& stmt);
  Result<PigRelation> ExecSpatialize(const Statement& stmt);
  Result<PigRelation> ExecFilter(const Statement& stmt);
  Result<PigRelation> ExecSnapshotFilter(const Statement& stmt,
                                         const PigRelation& in);
  Result<PigRelation> ExecPartition(const Statement& stmt);
  Result<PigRelation> ExecJoin(const Statement& stmt);
  Result<PigRelation> ExecKnn(const Statement& stmt);
  Result<PigRelation> ExecCluster(const Statement& stmt);
  Result<PigRelation> ExecAggregate(const Statement& stmt);
  Status ExecDump(const Statement& stmt);
  Status ExecStore(const Statement& stmt);
  Status ExecDescribe(const Statement& stmt);
  Status ExecSet(const Statement& stmt);
  Status ExecStream(const Statement& stmt);
  Status ExecWindow(const Statement& stmt);
  Status ExecPattern(const Statement& stmt);
  Status ExecEmit(const Statement& stmt);

  /// Status::Cancelled when the installed token has been signalled.
  Status CheckCancelled() const;

  Result<const PigRelation*> Input(const Statement& stmt) const;

  Context* ctx_;
  std::ostream* out_;
  std::shared_ptr<CancelToken> cancel_token_;
  std::map<std::string, PigRelation> relations_;
  std::map<std::string, StreamDef> streams_;
  std::map<std::string, WindowDef> windows_;
  std::map<std::string, PatternDef> patterns_;
  /// Non-null only while RunScriptAnalyze executes: spatial filters then
  /// report pruning counters here. A member (not a local) because filter
  /// lambdas capture the pointer into lazy lineage nodes.
  QueryStats analyze_stats_;
  bool analyze_mode_ = false;
  /// SET obs.profile 1: plain Run() also collects a QueryProfile and
  /// prints the tree to the output stream after the script finishes.
  bool profile_enabled_ = false;
  /// Serving layer: reject process-global SET keys (see set_session_mode).
  bool session_mode_ = false;
  SetHook set_hook_;
};

}  // namespace piglet
}  // namespace stark

#endif  // STARK_PIGLET_INTERPRETER_H_
