#include "piglet/optimizer.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace stark {
namespace piglet {

namespace {

/// Deep copy of a statement (Statement owns a unique_ptr<Expr>).
Statement CloneStatement(const Statement& s) {
  Statement out;
  out.kind = s.kind;
  out.line = s.line;
  out.target = s.target;
  out.input = s.input;
  out.input2 = s.input2;
  out.path = s.path;
  out.filter = s.filter ? CloneExpr(*s.filter) : nullptr;
  out.partitioner = s.partitioner;
  out.partitioner_param = s.partitioner_param;
  out.time_buckets = s.time_buckets;
  out.index_order = s.index_order;
  out.join_pred = s.join_pred;
  out.join_distance = s.join_distance;
  out.knn_query = s.knn_query;
  out.knn_k = s.knn_k;
  out.dbscan_eps = s.dbscan_eps;
  out.dbscan_min_pts = s.dbscan_min_pts;
  out.cluster_grid = s.cluster_grid;
  out.aggregate_column = s.aggregate_column;
  out.limit = s.limit;
  out.set_key = s.set_key;
  out.set_value = s.set_value;
  out.stream_source = s.stream_source;
  out.gen_count = s.gen_count;
  out.gen_seed = s.gen_seed;
  out.gen_step = s.gen_step;
  out.window_size = s.window_size;
  out.window_slide = s.window_slide;
  out.window_lateness = s.window_lateness;
  out.pattern_kind = s.pattern_kind;
  out.pattern_categories = s.pattern_categories;
  out.pattern_within = s.pattern_within;
  out.pattern_cmp = s.pattern_cmp;
  out.pattern_threshold = s.pattern_threshold;
  out.pattern_region = s.pattern_region;
  out.pattern_region_pred = s.pattern_region_pred;
  out.pattern_region_distance = s.pattern_region_distance;
  return out;
}

Program CloneProgram(const Program& p) {
  Program out;
  out.statements.reserve(p.statements.size());
  for (const Statement& s : p.statements) {
    out.statements.push_back(CloneStatement(s));
  }
  return out;
}

bool IsAssignment(const Statement& s) {
  // SET is a side-effecting config statement with no target: like the
  // sinks, it must never be dead-code-eliminated. EMIT is the streaming
  // sink (its consumption of a pattern/window keeps the stream chain
  // alive through the ordinary dead-code rule).
  return s.kind != Statement::Kind::kDump &&
         s.kind != Statement::Kind::kStore &&
         s.kind != Statement::Kind::kDescribe &&
         s.kind != Statement::Kind::kSet &&
         s.kind != Statement::Kind::kEmit;
}

/// Statement indices that consume each relation name.
std::map<std::string, std::vector<size_t>> ConsumersOf(const Program& p) {
  std::map<std::string, std::vector<size_t>> consumers;
  for (size_t i = 0; i < p.statements.size(); ++i) {
    const Statement& s = p.statements[i];
    if (!s.input.empty()) consumers[s.input].push_back(i);
    if (!s.input2.empty()) consumers[s.input2].push_back(i);
  }
  return consumers;
}

/// True iff every relation name is assigned at most once.
bool IsSingleAssignment(const Program& p) {
  std::set<std::string> seen;
  for (const Statement& s : p.statements) {
    if (!IsAssignment(s)) continue;
    if (!seen.insert(s.target).second) return false;
  }
  return true;
}

/// R3: removes pure statements whose target is never consumed.
bool RemoveDeadCode(Program* p, OptimizerReport* report) {
  const auto consumers = ConsumersOf(*p);
  std::vector<Statement> kept;
  bool changed = false;
  for (Statement& s : p->statements) {
    const bool dead = IsAssignment(s) && consumers.find(s.target) ==
                                             consumers.end();
    if (dead) {
      changed = true;
      if (report) ++report->removed_statements;
    } else {
      kept.push_back(std::move(s));
    }
  }
  p->statements = std::move(kept);
  return changed;
}

/// R1: merges FILTER-of-FILTER chains when the inner result is otherwise
/// unused. Returns true when a rewrite happened.
bool MergeFilters(Program* p, OptimizerReport* report) {
  const auto consumers = ConsumersOf(*p);
  for (size_t i = 0; i < p->statements.size(); ++i) {
    Statement& outer = p->statements[i];
    if (outer.kind != Statement::Kind::kFilter) continue;
    // Find the statement defining outer.input.
    for (size_t j = 0; j < p->statements.size(); ++j) {
      Statement& inner = p->statements[j];
      if (!IsAssignment(inner) || inner.target != outer.input) continue;
      if (inner.kind != Statement::Kind::kFilter) break;
      const auto it = consumers.find(inner.target);
      if (it == consumers.end() || it->second.size() != 1) break;
      // outer = FILTER inner BY e2, inner = FILTER x BY e1
      // ==> outer = FILTER x BY (e1 AND e2); inner becomes dead (R3).
      auto combined = std::make_unique<Expr>();
      combined->kind = Expr::Kind::kAnd;
      combined->lhs = CloneExpr(*inner.filter);
      combined->rhs = std::move(outer.filter);
      outer.filter = std::move(combined);
      outer.input = inner.input;
      if (report) ++report->merged_filters;
      return true;
    }
  }
  return false;
}

/// R2: swaps PARTITION below an attribute-only FILTER when the partitioned
/// relation feeds only that filter. Returns true when a rewrite happened.
bool PushFilterBelowPartition(Program* p, OptimizerReport* report) {
  const auto consumers = ConsumersOf(*p);
  for (size_t i = 0; i < p->statements.size(); ++i) {
    Statement& filter = p->statements[i];
    if (filter.kind != Statement::Kind::kFilter) continue;
    if (!filter.filter || !IsAttributeOnly(*filter.filter)) continue;
    for (size_t j = 0; j < p->statements.size(); ++j) {
      Statement& partition = p->statements[j];
      if (!IsAssignment(partition) || partition.target != filter.input) {
        continue;
      }
      if (partition.kind != Statement::Kind::kPartition) break;
      const auto it = consumers.find(partition.target);
      if (it == consumers.end() || it->second.size() != 1) break;
      // partition = PARTITION s BY ...; filter = FILTER partition BY e
      // ==> fresh = FILTER s BY e; filter(target) = PARTITION fresh BY ...
      const std::string fresh =
          "__opt_" + filter.target + "_" + std::to_string(i);
      Statement pushed = CloneStatement(filter);
      pushed.target = fresh;
      pushed.input = partition.input;

      Statement repartition = CloneStatement(partition);
      repartition.target = filter.target;
      repartition.input = fresh;

      // Replace in order: pushed filter where the PARTITION was, the
      // repartition where the FILTER was; the old partition statement
      // disappears.
      p->statements[j] = std::move(pushed);
      p->statements[i] = std::move(repartition);
      if (report) ++report->pushed_filters;
      return true;
    }
  }
  return false;
}

}  // namespace

std::unique_ptr<Expr> CloneExpr(const Expr& expr) {
  auto out = std::make_unique<Expr>();
  out->kind = expr.kind;
  out->column = expr.column;
  out->op = expr.op;
  out->literal = expr.literal;
  out->lhs = expr.lhs ? CloneExpr(*expr.lhs) : nullptr;
  out->rhs = expr.rhs ? CloneExpr(*expr.rhs) : nullptr;
  out->pred = expr.pred;
  out->query = expr.query;
  out->max_distance = expr.max_distance;
  return out;
}

bool IsAttributeOnly(const Expr& expr) {
  switch (expr.kind) {
    case Expr::Kind::kCompare:
      return true;
    case Expr::Kind::kSpatialPred:
      return false;
    case Expr::Kind::kNot:
      return IsAttributeOnly(*expr.lhs);
    case Expr::Kind::kAnd:
    case Expr::Kind::kOr:
      return IsAttributeOnly(*expr.lhs) && IsAttributeOnly(*expr.rhs);
  }
  return false;
}

Program Optimize(const Program& program, OptimizerReport* report) {
  Program out = CloneProgram(program);
  if (!IsSingleAssignment(out)) return out;  // conservative bail-out
  bool changed = true;
  while (changed) {
    changed = false;
    changed |= MergeFilters(&out, report);
    changed |= PushFilterBelowPartition(&out, report);
    changed |= RemoveDeadCode(&out, report);
  }
  return out;
}

}  // namespace piglet
}  // namespace stark
