/// \file optimizer.h
/// Logical plan rewriting for Piglet programs. The Piglet engine [4] is a
/// platform-transparent analytics layer, and rewriting the statement graph
/// before execution is its core job; this pass implements three classic
/// rules over the spatio-temporal dialect:
///
///  R1 (filter merge)     f1 = FILTER x BY e1; f2 = FILTER f1 BY e2
///                        ==> f2 = FILTER x BY (e1 AND e2)   [f1 unused]
///  R2 (filter pushdown)  p = PARTITION s ...; f = FILTER p BY <attr-only>
///                        ==> f' = FILTER s ...; f = PARTITION f' ...
///                        (attribute filters shrink the shuffle; spatial
///                        filters stay above PARTITION to keep pruning)
///  R3 (dead code)        pure statements whose result is never consumed
///                        are removed.
#ifndef STARK_PIGLET_OPTIMIZER_H_
#define STARK_PIGLET_OPTIMIZER_H_

#include "common/result.h"
#include "piglet/ast.h"

namespace stark {
namespace piglet {

/// Counts of applied rewrites, for tests and EXPLAIN-style output.
struct OptimizerReport {
  size_t merged_filters = 0;
  size_t pushed_filters = 0;
  size_t removed_statements = 0;

  size_t Total() const {
    return merged_filters + pushed_filters + removed_statements;
  }
};

/// Deep copy of an expression tree.
std::unique_ptr<Expr> CloneExpr(const Expr& expr);

/// True iff \p expr references only tuple attributes (no spatial
/// predicates) — the pushdown-safety condition of rule R2.
bool IsAttributeOnly(const Expr& expr);

/// Rewrites \p program to fixpoint. Returns the optimized program; the
/// original is left untouched. Programs that reassign a relation name are
/// returned unchanged (the rules assume single assignment). \p report, if
/// non-null, receives the rewrite counts.
Program Optimize(const Program& program, OptimizerReport* report = nullptr);

}  // namespace piglet
}  // namespace stark

#endif  // STARK_PIGLET_OPTIMIZER_H_
