#include "piglet/parser.h"

#include <algorithm>
#include <cctype>

#include "piglet/lexer.h"

namespace stark {
namespace piglet {

namespace {

std::string Upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::toupper(c));
  });
  return s;
}

/// Token-stream cursor with keyword helpers.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Program> ParseProgram() {
    Program program;
    while (Peek().type != TokenType::kEnd) {
      STARK_ASSIGN_OR_RETURN(Statement stmt, ParseStatement());
      STARK_RETURN_NOT_OK(ExpectSemi());
      program.statements.push_back(std::move(stmt));
    }
    if (program.statements.empty()) {
      return Status::ParseError("piglet: empty program");
    }
    return program;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  Token Next() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }

  bool PeekKeyword(const std::string& kw, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.type == TokenType::kIdent && Upper(t.text) == kw;
  }

  Status Error(const std::string& msg) const {
    return Status::ParseError("piglet:" + std::to_string(Peek().line) + ": " +
                              msg);
  }

  Status ExpectKeyword(const std::string& kw) {
    if (!PeekKeyword(kw)) return Error("expected " + kw);
    Next();
    return Status::OK();
  }

  Status Expect(TokenType type, const char* what) {
    if (Peek().type != type) return Error(std::string("expected ") + what);
    Next();
    return Status::OK();
  }

  Status ExpectSemi() { return Expect(TokenType::kSemi, "';'"); }

  Result<std::string> ExpectIdent(const char* what) {
    if (Peek().type != TokenType::kIdent) {
      return Error(std::string("expected ") + what);
    }
    return Next().text;
  }

  Result<std::string> ExpectString(const char* what) {
    if (Peek().type != TokenType::kString) {
      return Error(std::string("expected ") + what);
    }
    return Next().text;
  }

  Result<double> ExpectNumber(const char* what) {
    if (Peek().type != TokenType::kNumber) {
      return Error(std::string("expected ") + what);
    }
    return Next().number;
  }

  Result<Statement> ParseStatement() {
    // Non-assignment statements.
    if (PeekKeyword("DUMP") || PeekKeyword("STORE") || PeekKeyword("DESCRIBE")) {
      return ParseOutputStatement();
    }
    if (PeekKeyword("SET")) return ParseSetStatement();
    if (PeekKeyword("STREAM")) return ParseStreamStatement();
    if (PeekKeyword("EMIT")) return ParseEmitStatement();
    // target = OPERATOR ...
    Statement stmt;
    stmt.line = Peek().line;
    STARK_ASSIGN_OR_RETURN(stmt.target, ExpectIdent("relation name"));
    STARK_RETURN_NOT_OK(Expect(TokenType::kEquals, "'='"));
    if (Peek().type != TokenType::kIdent) return Error("expected operator");
    const std::string op = Upper(Next().text);

    if (op == "LOAD") {
      stmt.kind = Statement::Kind::kLoad;
      STARK_ASSIGN_OR_RETURN(stmt.path, ExpectString("file path"));
      return stmt;
    }
    if (op == "SPATIALIZE") {
      stmt.kind = Statement::Kind::kSpatialize;
      STARK_ASSIGN_OR_RETURN(stmt.input, ExpectIdent("relation"));
      return stmt;
    }
    if (op == "FILTER") {
      stmt.kind = Statement::Kind::kFilter;
      STARK_ASSIGN_OR_RETURN(stmt.input, ExpectIdent("relation"));
      STARK_RETURN_NOT_OK(ExpectKeyword("BY"));
      STARK_ASSIGN_OR_RETURN(stmt.filter, ParseOrExpr());
      return stmt;
    }
    if (op == "PARTITION") {
      stmt.kind = Statement::Kind::kPartition;
      STARK_ASSIGN_OR_RETURN(stmt.input, ExpectIdent("relation"));
      STARK_RETURN_NOT_OK(ExpectKeyword("BY"));
      if (PeekKeyword("GRID")) {
        Next();
        stmt.partitioner = PartitionerKind::kGrid;
      } else if (PeekKeyword("BSP")) {
        Next();
        stmt.partitioner = PartitionerKind::kBsp;
      } else {
        return Error("expected GRID or BSP");
      }
      STARK_RETURN_NOT_OK(Expect(TokenType::kLParen, "'('"));
      STARK_ASSIGN_OR_RETURN(stmt.partitioner_param,
                             ExpectNumber("partitioner parameter"));
      STARK_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
      // Optional TIME(k): spatio-temporal partitioning (GRID only).
      if (PeekKeyword("TIME")) {
        if (stmt.partitioner != PartitionerKind::kGrid) {
          return Error("TIME buckets require the GRID partitioner");
        }
        Next();
        STARK_RETURN_NOT_OK(Expect(TokenType::kLParen, "'('"));
        STARK_ASSIGN_OR_RETURN(double buckets, ExpectNumber("time buckets"));
        if (buckets < 1) return Error("time buckets must be >= 1");
        stmt.time_buckets = static_cast<size_t>(buckets);
        STARK_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
      }
      return stmt;
    }
    if (op == "AGGREGATE") {
      stmt.kind = Statement::Kind::kAggregate;
      STARK_ASSIGN_OR_RETURN(stmt.input, ExpectIdent("relation"));
      STARK_RETURN_NOT_OK(ExpectKeyword("BY"));
      STARK_ASSIGN_OR_RETURN(stmt.aggregate_column, ExpectIdent("column"));
      STARK_RETURN_NOT_OK(ExpectKeyword("COUNT"));
      return stmt;
    }
    if (op == "INDEX") {
      stmt.kind = Statement::Kind::kIndex;
      STARK_ASSIGN_OR_RETURN(stmt.input, ExpectIdent("relation"));
      STARK_RETURN_NOT_OK(ExpectKeyword("ORDER"));
      STARK_ASSIGN_OR_RETURN(double order, ExpectNumber("index order"));
      if (order < 2) return Error("index order must be >= 2");
      stmt.index_order = static_cast<size_t>(order);
      return stmt;
    }
    if (op == "JOIN") {
      stmt.kind = Statement::Kind::kJoin;
      STARK_ASSIGN_OR_RETURN(stmt.input, ExpectIdent("left relation"));
      STARK_RETURN_NOT_OK(Expect(TokenType::kComma, "','"));
      STARK_ASSIGN_OR_RETURN(stmt.input2, ExpectIdent("right relation"));
      STARK_RETURN_NOT_OK(ExpectKeyword("ON"));
      STARK_ASSIGN_OR_RETURN(auto pred, ParsePredicateName());
      stmt.join_pred = pred;
      if (pred == PredicateType::kWithinDistance) {
        STARK_RETURN_NOT_OK(Expect(TokenType::kLParen, "'('"));
        STARK_ASSIGN_OR_RETURN(stmt.join_distance,
                               ExpectNumber("distance"));
        STARK_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
      }
      return stmt;
    }
    if (op == "KNN") {
      stmt.kind = Statement::Kind::kKnn;
      STARK_ASSIGN_OR_RETURN(stmt.input, ExpectIdent("relation"));
      STARK_RETURN_NOT_OK(ExpectKeyword("QUERY"));
      STARK_ASSIGN_OR_RETURN(std::string wkt, ExpectString("WKT literal"));
      STARK_ASSIGN_OR_RETURN(STObject query, STObject::FromWkt(wkt));
      stmt.knn_query = std::move(query);
      STARK_RETURN_NOT_OK(ExpectKeyword("K"));
      STARK_ASSIGN_OR_RETURN(double k, ExpectNumber("k"));
      if (k < 1) return Error("K must be >= 1");
      stmt.knn_k = static_cast<size_t>(k);
      return stmt;
    }
    if (op == "CLUSTER") {
      stmt.kind = Statement::Kind::kCluster;
      STARK_ASSIGN_OR_RETURN(stmt.input, ExpectIdent("relation"));
      STARK_RETURN_NOT_OK(ExpectKeyword("USING"));
      STARK_RETURN_NOT_OK(ExpectKeyword("DBSCAN"));
      STARK_RETURN_NOT_OK(Expect(TokenType::kLParen, "'('"));
      STARK_ASSIGN_OR_RETURN(stmt.dbscan_eps, ExpectNumber("eps"));
      STARK_RETURN_NOT_OK(Expect(TokenType::kComma, "','"));
      STARK_ASSIGN_OR_RETURN(double min_pts, ExpectNumber("min_pts"));
      if (min_pts < 1) return Error("min_pts must be >= 1");
      stmt.dbscan_min_pts = static_cast<size_t>(min_pts);
      STARK_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
      if (PeekKeyword("GRID")) {
        Next();
        STARK_ASSIGN_OR_RETURN(double cells, ExpectNumber("grid cells"));
        if (cells < 1) return Error("grid cells must be >= 1");
        stmt.cluster_grid = static_cast<size_t>(cells);
      }
      return stmt;
    }
    if (op == "WINDOW") {
      stmt.kind = Statement::Kind::kWindow;
      STARK_ASSIGN_OR_RETURN(stmt.input, ExpectIdent("stream"));
      STARK_RETURN_NOT_OK(ExpectKeyword("SIZE"));
      STARK_ASSIGN_OR_RETURN(double size, ExpectNumber("window size"));
      if (size < 1) return Error("window size must be >= 1");
      stmt.window_size = static_cast<int64_t>(size);
      if (PeekKeyword("SLIDE")) {
        Next();
        STARK_ASSIGN_OR_RETURN(double slide, ExpectNumber("window slide"));
        if (slide < 1) return Error("window slide must be >= 1");
        if (slide > size) return Error("window slide must be <= SIZE");
        stmt.window_slide = static_cast<int64_t>(slide);
      }
      if (PeekKeyword("LATENESS")) {
        Next();
        STARK_ASSIGN_OR_RETURN(double late, ExpectNumber("lateness bound"));
        if (late < 0) return Error("lateness bound must be >= 0");
        stmt.window_lateness = static_cast<int64_t>(late);
      }
      return stmt;
    }
    if (op == "PATTERN") return ParsePatternStatement(std::move(stmt));
    if (op == "LIMIT") {
      stmt.kind = Statement::Kind::kLimit;
      STARK_ASSIGN_OR_RETURN(stmt.input, ExpectIdent("relation"));
      STARK_ASSIGN_OR_RETURN(double lim, ExpectNumber("limit"));
      if (lim < 0) return Error("limit must be >= 0");
      stmt.limit = static_cast<size_t>(lim);
      return stmt;
    }
    return Error("unknown operator '" + op + "'");
  }

  /// SET <ident>(.<ident>)* <number>;  — engine config knobs, e.g.
  /// `SET job.deadline_ms 2000;` (Pig's own `set` statement shape).
  Result<Statement> ParseSetStatement() {
    Statement stmt;
    stmt.kind = Statement::Kind::kSet;
    stmt.line = Peek().line;
    Next();  // SET
    STARK_ASSIGN_OR_RETURN(stmt.set_key, ExpectIdent("config key"));
    while (Peek().type == TokenType::kDot) {
      Next();
      STARK_ASSIGN_OR_RETURN(const std::string part,
                             ExpectIdent("config key part"));
      stmt.set_key += "." + part;
    }
    STARK_ASSIGN_OR_RETURN(stmt.set_value, ExpectNumber("config value"));
    return stmt;
  }

  /// STREAM <name> FROM GENERATOR '(' count ',' seed ',' step ')'
  ///               | TAIL '(' 'file.csv' ')'
  Result<Statement> ParseStreamStatement() {
    Statement stmt;
    stmt.kind = Statement::Kind::kStream;
    stmt.line = Peek().line;
    Next();  // STREAM
    STARK_ASSIGN_OR_RETURN(stmt.target, ExpectIdent("stream name"));
    STARK_RETURN_NOT_OK(ExpectKeyword("FROM"));
    if (PeekKeyword("GENERATOR")) {
      Next();
      stmt.stream_source = StreamSourceKind::kGenerator;
      STARK_RETURN_NOT_OK(Expect(TokenType::kLParen, "'('"));
      STARK_ASSIGN_OR_RETURN(double count, ExpectNumber("event count"));
      if (count < 0) return Error("event count must be >= 0");
      stmt.gen_count = static_cast<int64_t>(count);
      STARK_RETURN_NOT_OK(Expect(TokenType::kComma, "','"));
      STARK_ASSIGN_OR_RETURN(double seed, ExpectNumber("seed"));
      stmt.gen_seed = static_cast<int64_t>(seed);
      STARK_RETURN_NOT_OK(Expect(TokenType::kComma, "','"));
      STARK_ASSIGN_OR_RETURN(double step, ExpectNumber("time step"));
      if (step < 1) return Error("time step must be >= 1");
      stmt.gen_step = static_cast<int64_t>(step);
      STARK_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
      return stmt;
    }
    if (PeekKeyword("TAIL")) {
      Next();
      stmt.stream_source = StreamSourceKind::kTail;
      STARK_RETURN_NOT_OK(Expect(TokenType::kLParen, "'('"));
      STARK_ASSIGN_OR_RETURN(stmt.path, ExpectString("file path"));
      STARK_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
      return stmt;
    }
    return Error("expected GENERATOR or TAIL");
  }

  /// EMIT <window-or-pattern>  — the streaming sink: runs the continuous
  /// query to completion and prints every fired window.
  Result<Statement> ParseEmitStatement() {
    Statement stmt;
    stmt.kind = Statement::Kind::kEmit;
    stmt.line = Peek().line;
    Next();  // EMIT
    STARK_ASSIGN_OR_RETURN(stmt.input, ExpectIdent("window or pattern"));
    return stmt;
  }

  // PATTERN <window> SEQ 'a','b'[,...] [WITHIN n] [WHERE <region>]
  //                | ABSENT 'a' [WHERE <region>]
  //                | COUNT 'a' <cmp> n [WHERE <region>]
  // region := PREDNAME '(' 'wkt' [, dist] [, begin, end] ')'
  Result<Statement> ParsePatternStatement(Statement stmt) {
    stmt.kind = Statement::Kind::kPattern;
    STARK_ASSIGN_OR_RETURN(stmt.input, ExpectIdent("window"));
    if (PeekKeyword("SEQ")) {
      Next();
      stmt.pattern_kind = StreamPatternKind::kSequence;
      STARK_ASSIGN_OR_RETURN(std::string first, ExpectString("category"));
      stmt.pattern_categories.push_back(std::move(first));
      while (Peek().type == TokenType::kComma) {
        Next();
        STARK_ASSIGN_OR_RETURN(std::string cat, ExpectString("category"));
        stmt.pattern_categories.push_back(std::move(cat));
      }
      if (stmt.pattern_categories.size() < 2) {
        return Error("SEQ needs at least two categories");
      }
      if (PeekKeyword("WITHIN")) {
        Next();
        STARK_ASSIGN_OR_RETURN(double within, ExpectNumber("WITHIN bound"));
        if (within < 1) return Error("WITHIN bound must be >= 1");
        stmt.pattern_within = static_cast<int64_t>(within);
      }
    } else if (PeekKeyword("ABSENT")) {
      Next();
      stmt.pattern_kind = StreamPatternKind::kAbsence;
      STARK_ASSIGN_OR_RETURN(std::string cat, ExpectString("category"));
      stmt.pattern_categories.push_back(std::move(cat));
    } else if (PeekKeyword("COUNT")) {
      Next();
      stmt.pattern_kind = StreamPatternKind::kCount;
      STARK_ASSIGN_OR_RETURN(std::string cat, ExpectString("category"));
      stmt.pattern_categories.push_back(std::move(cat));
      if (Peek().type != TokenType::kCompare) {
        return Error("expected comparison operator after COUNT category");
      }
      stmt.pattern_cmp = Next().text;
      if (stmt.pattern_cmp == "!=") {
        return Error("COUNT supports ==, <, <=, >, >=");
      }
      STARK_ASSIGN_OR_RETURN(double threshold, ExpectNumber("threshold"));
      stmt.pattern_threshold = static_cast<int64_t>(threshold);
    } else {
      return Error("expected SEQ, ABSENT or COUNT");
    }
    if (PeekKeyword("WHERE")) {
      Next();
      STARK_ASSIGN_OR_RETURN(PredicateType pred, ParsePredicateName());
      stmt.pattern_region_pred = pred;
      STARK_RETURN_NOT_OK(Expect(TokenType::kLParen, "'('"));
      STARK_ASSIGN_OR_RETURN(std::string wkt, ExpectString("WKT literal"));
      if (pred == PredicateType::kWithinDistance) {
        STARK_RETURN_NOT_OK(Expect(TokenType::kComma, "','"));
        STARK_ASSIGN_OR_RETURN(stmt.pattern_region_distance,
                               ExpectNumber("distance"));
      }
      std::optional<std::pair<Instant, Instant>> window;
      if (Peek().type == TokenType::kComma) {
        Next();
        STARK_ASSIGN_OR_RETURN(double begin, ExpectNumber("window begin"));
        STARK_RETURN_NOT_OK(Expect(TokenType::kComma, "','"));
        STARK_ASSIGN_OR_RETURN(double end, ExpectNumber("window end"));
        if (end < begin) return Error("window end before begin");
        window = {static_cast<Instant>(begin), static_cast<Instant>(end)};
      }
      STARK_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
      Result<STObject> region =
          window.has_value()
              ? STObject::FromWkt(wkt, window->first, window->second)
              : STObject::FromWkt(wkt);
      if (!region.ok()) {
        return Error("bad WKT literal: " + region.status().message());
      }
      stmt.pattern_region = std::move(region).ValueOrDie();
    }
    return stmt;
  }

  Result<Statement> ParseOutputStatement() {
    Statement stmt;
    stmt.line = Peek().line;
    const std::string op = Upper(Next().text);
    if (op == "DUMP") {
      stmt.kind = Statement::Kind::kDump;
      STARK_ASSIGN_OR_RETURN(stmt.input, ExpectIdent("relation"));
      return stmt;
    }
    if (op == "DESCRIBE") {
      stmt.kind = Statement::Kind::kDescribe;
      STARK_ASSIGN_OR_RETURN(stmt.input, ExpectIdent("relation"));
      return stmt;
    }
    stmt.kind = Statement::Kind::kStore;
    STARK_ASSIGN_OR_RETURN(stmt.input, ExpectIdent("relation"));
    STARK_RETURN_NOT_OK(ExpectKeyword("INTO"));
    STARK_ASSIGN_OR_RETURN(stmt.path, ExpectString("file path"));
    return stmt;
  }

  Result<PredicateType> ParsePredicateName() {
    if (Peek().type != TokenType::kIdent) {
      return Error("expected predicate name");
    }
    const std::string name = Upper(Next().text);
    if (name == "INTERSECTS") return PredicateType::kIntersects;
    if (name == "CONTAINS") return PredicateType::kContains;
    if (name == "CONTAINEDBY") return PredicateType::kContainedBy;
    if (name == "WITHINDISTANCE") return PredicateType::kWithinDistance;
    return Error("unknown predicate '" + name + "'");
  }

  // expr := and_expr (OR and_expr)*
  Result<std::unique_ptr<Expr>> ParseOrExpr() {
    STARK_ASSIGN_OR_RETURN(auto lhs, ParseAndExpr());
    while (PeekKeyword("OR")) {
      Next();
      STARK_ASSIGN_OR_RETURN(auto rhs, ParseAndExpr());
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kOr;
      node->lhs = std::move(lhs);
      node->rhs = std::move(rhs);
      lhs = std::move(node);
    }
    return lhs;
  }

  // and_expr := unary_expr (AND unary_expr)*
  Result<std::unique_ptr<Expr>> ParseAndExpr() {
    STARK_ASSIGN_OR_RETURN(auto lhs, ParseUnaryExpr());
    while (PeekKeyword("AND")) {
      Next();
      STARK_ASSIGN_OR_RETURN(auto rhs, ParseUnaryExpr());
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kAnd;
      node->lhs = std::move(lhs);
      node->rhs = std::move(rhs);
      lhs = std::move(node);
    }
    return lhs;
  }

  // unary := NOT unary | '(' expr ')' | spatial_pred | comparison
  Result<std::unique_ptr<Expr>> ParseUnaryExpr() {
    if (PeekKeyword("NOT")) {
      Next();
      STARK_ASSIGN_OR_RETURN(auto inner, ParseUnaryExpr());
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kNot;
      node->lhs = std::move(inner);
      return node;
    }
    if (Peek().type == TokenType::kLParen) {
      Next();
      STARK_ASSIGN_OR_RETURN(auto inner, ParseOrExpr());
      STARK_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
      return inner;
    }
    if (PeekKeyword("INTERSECTS") || PeekKeyword("CONTAINS") ||
        PeekKeyword("CONTAINEDBY") || PeekKeyword("WITHINDISTANCE")) {
      return ParseSpatialPred();
    }
    return ParseComparison();
  }

  // spatial_pred := NAME '(' 'wkt' [, num, num] ')'
  //               | WITHINDISTANCE '(' 'wkt', dist [, num, num] ')'
  Result<std::unique_ptr<Expr>> ParseSpatialPred() {
    STARK_ASSIGN_OR_RETURN(PredicateType pred, ParsePredicateName());
    STARK_RETURN_NOT_OK(Expect(TokenType::kLParen, "'('"));
    STARK_ASSIGN_OR_RETURN(std::string wkt, ExpectString("WKT literal"));

    auto node = std::make_unique<Expr>();
    node->kind = Expr::Kind::kSpatialPred;
    node->pred = pred;

    if (pred == PredicateType::kWithinDistance) {
      STARK_RETURN_NOT_OK(Expect(TokenType::kComma, "','"));
      STARK_ASSIGN_OR_RETURN(node->max_distance, ExpectNumber("distance"));
    }
    // Optional temporal window: , begin, end
    std::optional<std::pair<Instant, Instant>> window;
    if (Peek().type == TokenType::kComma) {
      Next();
      STARK_ASSIGN_OR_RETURN(double begin, ExpectNumber("window begin"));
      STARK_RETURN_NOT_OK(Expect(TokenType::kComma, "','"));
      STARK_ASSIGN_OR_RETURN(double end, ExpectNumber("window end"));
      if (end < begin) return Error("window end before begin");
      window = {static_cast<Instant>(begin), static_cast<Instant>(end)};
    }
    STARK_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));

    Result<STObject> query =
        window.has_value()
            ? STObject::FromWkt(wkt, window->first, window->second)
            : STObject::FromWkt(wkt);
    if (!query.ok()) {
      return Error("bad WKT literal: " + query.status().message());
    }
    node->query = std::move(query).ValueOrDie();
    return node;
  }

  // comparison := IDENT op literal | literal op IDENT
  Result<std::unique_ptr<Expr>> ParseComparison() {
    auto node = std::make_unique<Expr>();
    node->kind = Expr::Kind::kCompare;
    if (Peek().type != TokenType::kIdent) {
      return Error("expected column name");
    }
    node->column = Next().text;
    if (Peek().type != TokenType::kCompare) {
      return Error("expected comparison operator");
    }
    node->op = Next().text;
    if (Peek().type == TokenType::kNumber) {
      const Token t = Next();
      // Integral literals compare as int64, others as double.
      if (t.number == static_cast<double>(static_cast<int64_t>(t.number)) &&
          t.text.find('.') == std::string::npos &&
          t.text.find('e') == std::string::npos &&
          t.text.find('E') == std::string::npos) {
        node->literal = static_cast<int64_t>(t.number);
      } else {
        node->literal = t.number;
      }
    } else if (Peek().type == TokenType::kString) {
      node->literal = Next().text;
    } else {
      return Error("expected literal after comparison operator");
    }
    return node;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Program> Parse(const std::string& source) {
  STARK_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  Parser parser(std::move(tokens));
  return parser.ParseProgram();
}

}  // namespace piglet
}  // namespace stark
