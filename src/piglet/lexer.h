/// \file lexer.h
/// Tokenizer for the Piglet language — STARK's Pig Latin dialect [4] with
/// the spatio-temporal extensions described in the paper (§4).
#ifndef STARK_PIGLET_LEXER_H_
#define STARK_PIGLET_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace stark {
namespace piglet {

/// Token categories of the Piglet grammar.
enum class TokenType {
  kIdent,    // relation / column names and keywords (case-insensitive)
  kNumber,   // integer or floating literal
  kString,   // '...' single-quoted literal
  kEquals,   // =
  kComma,    // ,
  kLParen,   // (
  kRParen,   // )
  kSemi,     // ;
  kDot,      // . (dotted config keys in SET, e.g. job.deadline_ms)
  kCompare,  // == != < <= > >=
  kEnd,      // end of input
};

/// One lexed token with its source position for error messages.
struct Token {
  TokenType type;
  std::string text;    // raw text (identifiers upper-cased separately)
  double number = 0;   // valid when type == kNumber
  size_t line = 1;
};

/// Splits \p source into tokens. `--` starts a comment until end of line.
Result<std::vector<Token>> Tokenize(const std::string& source);

}  // namespace piglet
}  // namespace stark

#endif  // STARK_PIGLET_LEXER_H_
