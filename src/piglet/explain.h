/// \file explain.h
/// Pretty-printer for Piglet programs — the EXPLAIN facility: renders a
/// parsed (or optimized) program back to canonical statement text so users
/// and tests can inspect what the optimizer did. Also defines the EXPLAIN
/// ANALYZE report (per-operator wall time, record counts, and filter
/// pruning stats), which Interpreter::RunScriptAnalyze fills.
#ifndef STARK_PIGLET_EXPLAIN_H_
#define STARK_PIGLET_EXPLAIN_H_

#include <string>
#include <vector>

#include "obs/profile.h"
#include "piglet/ast.h"
#include "spatial_rdd/query_stats.h"

namespace stark {
namespace piglet {

/// Canonical one-line rendering of an expression.
std::string FormatExpr(const Expr& expr);

/// Canonical one-line rendering of a statement (with trailing ';').
std::string FormatStatement(const Statement& stmt);

/// Renders the whole program, one statement per line.
std::string FormatProgram(const Program& program);

/// Measured execution of one statement under EXPLAIN ANALYZE.
struct OperatorProfile {
  std::string statement;  ///< Canonical statement text.
  double wall_ms = 0;     ///< Wall time incl. forced materialization.
  bool produced_relation = false;  ///< False for sinks (DUMP/STORE/...).
  size_t rows_out = 0;             ///< Rows in the produced relation.
  size_t num_partitions = 0;       ///< Partitions of the produced relation.
  /// Spatial-filter pruning counters attributed to this statement (all
  /// zero for statements that ran no spatial filter).
  QueryStats::Snapshot filter;
  /// Per-job QueryProfile nodes collected while the statement ran: one
  /// child per engine job (stage) with rows/bytes/time/retry accounting.
  obs::ProfileNode profile;
};

/// Full EXPLAIN ANALYZE result for a script.
struct AnalyzeReport {
  std::vector<OperatorProfile> operators;
  double total_ms = 0;
  /// Root of the hierarchical QueryProfile (script -> statements -> jobs).
  obs::ProfileNode profile;
};

/// Human-readable table: one line per operator with wall time, row count,
/// partition count and (when present) pruned/scanned/candidates/results,
/// followed by the per-operator QueryProfile job tree.
std::string FormatAnalyzeReport(const AnalyzeReport& report);

}  // namespace piglet
}  // namespace stark

#endif  // STARK_PIGLET_EXPLAIN_H_
