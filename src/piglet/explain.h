/// \file explain.h
/// Pretty-printer for Piglet programs — the EXPLAIN facility: renders a
/// parsed (or optimized) program back to canonical statement text so users
/// and tests can inspect what the optimizer did.
#ifndef STARK_PIGLET_EXPLAIN_H_
#define STARK_PIGLET_EXPLAIN_H_

#include <string>

#include "piglet/ast.h"

namespace stark {
namespace piglet {

/// Canonical one-line rendering of an expression.
std::string FormatExpr(const Expr& expr);

/// Canonical one-line rendering of a statement (with trailing ';').
std::string FormatStatement(const Statement& stmt);

/// Renders the whole program, one statement per line.
std::string FormatProgram(const Program& program);

}  // namespace piglet
}  // namespace stark

#endif  // STARK_PIGLET_EXPLAIN_H_
