/// \file parser.h
/// Recursive-descent parser for Piglet programs.
#ifndef STARK_PIGLET_PARSER_H_
#define STARK_PIGLET_PARSER_H_

#include <string>

#include "common/result.h"
#include "piglet/ast.h"

namespace stark {
namespace piglet {

/// Parses a full Piglet program. Spatial query literals (WKT) are validated
/// during parsing, so a returned Program is executable without further
/// checks on its constants.
Result<Program> Parse(const std::string& source);

}  // namespace piglet
}  // namespace stark

#endif  // STARK_PIGLET_PARSER_H_
