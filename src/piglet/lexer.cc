#include "piglet/lexer.h"

#include <cctype>
#include <charconv>

namespace stark {
namespace piglet {

Result<std::vector<Token>> Tokenize(const std::string& source) {
  std::vector<Token> tokens;
  size_t line = 1;
  size_t i = 0;
  const size_t n = source.size();

  auto error = [&](const std::string& msg) {
    return Status::ParseError("piglet:" + std::to_string(line) + ": " + msg);
  };

  while (i < n) {
    const char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments: -- to end of line.
    if (c == '-' && i + 1 < n && source[i + 1] == '-') {
      while (i < n && source[i] != '\n') ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(source[i])) ||
                       source[i] == '_')) {
        ++i;
      }
      tokens.push_back(
          {TokenType::kIdent, source.substr(start, i - start), 0, line});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(source[i + 1])))) {
      size_t start = i;
      if (c == '-') ++i;
      while (i < n && (std::isdigit(static_cast<unsigned char>(source[i])) ||
                       source[i] == '.' || source[i] == 'e' ||
                       source[i] == 'E' ||
                       ((source[i] == '+' || source[i] == '-') &&
                        (source[i - 1] == 'e' || source[i - 1] == 'E')))) {
        ++i;
      }
      const std::string text = source.substr(start, i - start);
      double value = 0;
      auto [ptr, ec] =
          std::from_chars(text.data(), text.data() + text.size(), value);
      if (ec != std::errc() || ptr != text.data() + text.size()) {
        return error("bad number literal '" + text + "'");
      }
      tokens.push_back({TokenType::kNumber, text, value, line});
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string text;
      while (i < n && source[i] != '\'') {
        if (source[i] == '\n') ++line;
        text.push_back(source[i]);
        ++i;
      }
      if (i >= n) return error("unterminated string literal");
      ++i;  // closing quote
      tokens.push_back({TokenType::kString, std::move(text), 0, line});
      continue;
    }
    switch (c) {
      case '=':
        if (i + 1 < n && source[i + 1] == '=') {
          tokens.push_back({TokenType::kCompare, "==", 0, line});
          i += 2;
        } else {
          tokens.push_back({TokenType::kEquals, "=", 0, line});
          ++i;
        }
        continue;
      case '!':
        if (i + 1 < n && source[i + 1] == '=') {
          tokens.push_back({TokenType::kCompare, "!=", 0, line});
          i += 2;
          continue;
        }
        return error("unexpected '!'");
      case '<':
      case '>': {
        std::string op(1, c);
        if (i + 1 < n && source[i + 1] == '=') {
          op.push_back('=');
          i += 2;
        } else {
          ++i;
        }
        tokens.push_back({TokenType::kCompare, op, 0, line});
        continue;
      }
      case ',':
        tokens.push_back({TokenType::kComma, ",", 0, line});
        ++i;
        continue;
      case '(':
        tokens.push_back({TokenType::kLParen, "(", 0, line});
        ++i;
        continue;
      case ')':
        tokens.push_back({TokenType::kRParen, ")", 0, line});
        ++i;
        continue;
      case ';':
        tokens.push_back({TokenType::kSemi, ";", 0, line});
        ++i;
        continue;
      case '.':
        tokens.push_back({TokenType::kDot, ".", 0, line});
        ++i;
        continue;
      default:
        return error(std::string("unexpected character '") + c + "'");
    }
  }
  tokens.push_back({TokenType::kEnd, "", 0, line});
  return tokens;
}

}  // namespace piglet
}  // namespace stark
