/// \file ast.h
/// Abstract syntax tree of the Piglet language.
#ifndef STARK_PIGLET_AST_H_
#define STARK_PIGLET_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "core/stobject.h"
#include "spatial_rdd/predicate.h"

namespace stark {
namespace piglet {

/// Runtime value of a tuple field.
using PigValue = std::variant<int64_t, double, std::string>;

/// Boolean expression over a tuple, used by FILTER ... BY.
struct Expr {
  enum class Kind {
    kCompare,      // column op literal (or literal op column)
    kAnd,
    kOr,
    kNot,
    kSpatialPred,  // INTERSECTS/CONTAINS/CONTAINEDBY/WITHINDISTANCE(...)
  };
  Kind kind;

  // kCompare:
  std::string column;
  std::string op;  // == != < <= > >=
  PigValue literal;

  // kAnd / kOr / kNot:
  std::unique_ptr<Expr> lhs;
  std::unique_ptr<Expr> rhs;

  // kSpatialPred: the query object is built at parse time from the WKT
  // string and optional time-window arguments.
  PredicateType pred = PredicateType::kIntersects;
  std::optional<STObject> query;
  double max_distance = 0.0;
};

/// Which spatial partitioner a PARTITION statement selects.
enum class PartitionerKind { kGrid, kBsp };

/// Where a STREAM statement pulls events from.
enum class StreamSourceKind { kGenerator, kTail };

/// Which CEP operator a PATTERN statement applies.
enum class StreamPatternKind { kSequence, kAbsence, kCount };

/// One Piglet statement.
struct Statement {
  enum class Kind {
    kLoad,        // r = LOAD 'file.csv';
    kSpatialize,  // s = SPATIALIZE r;
    kFilter,      // f = FILTER r BY <expr>;
    kPartition,   // p = PARTITION r BY GRID(4) [TIME(6)] | BSP(1000);
    kIndex,       // i = INDEX r ORDER 5;
    kJoin,        // j = JOIN a, b ON INTERSECTS | WITHINDISTANCE(2.0);
    kKnn,         // k = KNN r QUERY 'POINT(..)' K 5;
    kCluster,     // c = CLUSTER r USING DBSCAN(0.5, 5) [GRID 4];
    kAggregate,   // a = AGGREGATE r BY category COUNT;
    kLimit,       // l = LIMIT r 10;
    kDump,        // DUMP r;
    kStore,       // STORE r INTO 'out.csv';
    kDescribe,    // DESCRIBE r;
    kSet,         // SET job.deadline_ms 2000;
    kStream,      // STREAM s FROM GENERATOR(1000, 42, 1) | TAIL('f.csv');
    kWindow,      // w = WINDOW s SIZE 10 [SLIDE 5] [LATENESS 2];
    kPattern,     // p = PATTERN w SEQ 'a','b' [WITHIN 5] [WHERE ...] | ...
    kEmit,        // EMIT p;
  };
  Kind kind;
  size_t line = 1;

  std::string target;  // assigned relation (empty for DUMP/STORE/DESCRIBE)
  std::string input;   // primary input relation
  std::string input2;  // JOIN right side

  std::string path;    // LOAD / STORE file path

  std::unique_ptr<Expr> filter;          // kFilter

  PartitionerKind partitioner = PartitionerKind::kGrid;  // kPartition
  double partitioner_param = 4;          // grid cells per dim / bsp max cost
  size_t time_buckets = 0;               // 0 = spatial-only partitioning

  std::string aggregate_column;          // kAggregate

  size_t index_order = 10;               // kIndex

  PredicateType join_pred = PredicateType::kIntersects;  // kJoin
  double join_distance = 0.0;

  std::optional<STObject> knn_query;     // kKnn
  size_t knn_k = 1;

  double dbscan_eps = 1.0;               // kCluster
  size_t dbscan_min_pts = 5;
  size_t cluster_grid = 4;

  size_t limit = 0;                      // kLimit

  std::string set_key;                   // kSet dotted key, e.g.
                                         // "job.deadline_ms"
  double set_value = 0;                  // kSet value

  // kStream: source definition. GENERATOR takes (count, seed, time_step);
  // TAIL reuses `path`.
  StreamSourceKind stream_source = StreamSourceKind::kGenerator;
  int64_t gen_count = 1000;
  int64_t gen_seed = 42;
  int64_t gen_step = 1;

  // kWindow: event-time window over a stream (`input`).
  int64_t window_size = 1;
  int64_t window_slide = 0;              // 0 = tumbling
  int64_t window_lateness = 0;           // watermark out-of-orderness bound

  // kPattern: CEP operator over a window (`input`). Each category is one
  // step; the optional WHERE region constrains every step spatially (and
  // temporally, when the literal carries a time window).
  StreamPatternKind pattern_kind = StreamPatternKind::kCount;
  std::vector<std::string> pattern_categories;
  int64_t pattern_within = 0;            // SEQ span bound, 0 = unbounded
  std::string pattern_cmp = ">=";        // COUNT comparison operator
  int64_t pattern_threshold = 1;         // COUNT threshold
  std::optional<STObject> pattern_region;
  PredicateType pattern_region_pred = PredicateType::kIntersects;
  double pattern_region_distance = 0.0;
};

/// A parsed Piglet program: a statement sequence.
struct Program {
  std::vector<Statement> statements;
};

}  // namespace piglet
}  // namespace stark

#endif  // STARK_PIGLET_AST_H_
