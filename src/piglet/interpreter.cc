#include "piglet/interpreter.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <ostream>
#include <set>

#include "clustering/distributed_dbscan.h"
#include "common/stopwatch.h"
#include "engine/pair_rdd.h"
#include "io/csv.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "partition/bsp_partitioner.h"
#include "partition/grid_partitioner.h"
#include "partition/st_grid_partitioner.h"
#include "piglet/parser.h"
#include "core/columnar.h"
#include "serve/catalog.h"
#include "spatial_rdd/columnar_refine.h"
#include "spatial_rdd/join.h"
#include "spatial_rdd/spatial_rdd.h"

namespace stark {
namespace piglet {

namespace {

/// Evaluates a comparison between a field value and a literal. Numeric
/// types compare numerically; strings compare lexically; a string/number
/// mismatch never matches.
bool CompareValues(const PigValue& field, const std::string& op,
                   const PigValue& literal) {
  const bool field_str = std::holds_alternative<std::string>(field);
  const bool lit_str = std::holds_alternative<std::string>(literal);
  if (field_str != lit_str) return false;
  int cmp;
  if (field_str) {
    cmp = std::get<std::string>(field).compare(std::get<std::string>(literal));
  } else {
    auto as_double = [](const PigValue& v) {
      return std::holds_alternative<int64_t>(v)
                 ? static_cast<double>(std::get<int64_t>(v))
                 : std::get<double>(v);
    };
    const double a = as_double(field);
    const double b = as_double(literal);
    cmp = a < b ? -1 : (a > b ? 1 : 0);
  }
  if (op == "==") return cmp == 0;
  if (op == "!=") return cmp != 0;
  if (op == "<") return cmp < 0;
  if (op == "<=") return cmp <= 0;
  if (op == ">") return cmp > 0;
  return cmp >= 0;  // ">="
}

/// Finds a column index in a schema.
Result<size_t> ColumnIndex(const std::vector<std::string>& schema,
                           const std::string& name) {
  for (size_t i = 0; i < schema.size(); ++i) {
    if (schema[i] == name) return i;
  }
  return Status::KeyError("piglet: unknown column '" + name + "'");
}

/// Validates that every column referenced by \p expr exists in \p schema
/// and that spatial predicates are only used on spatialized relations.
Status ValidateExpr(const Expr& expr, const std::vector<std::string>& schema,
                    bool spatialized) {
  switch (expr.kind) {
    case Expr::Kind::kCompare:
      return ColumnIndex(schema, expr.column).status();
    case Expr::Kind::kAnd:
    case Expr::Kind::kOr:
      STARK_RETURN_NOT_OK(ValidateExpr(*expr.lhs, schema, spatialized));
      return ValidateExpr(*expr.rhs, schema, spatialized);
    case Expr::Kind::kNot:
      return ValidateExpr(*expr.lhs, schema, spatialized);
    case Expr::Kind::kSpatialPred:
      if (!spatialized) {
        return Status::InvalidArgument(
            "piglet: spatial predicate on a relation without STObject key; "
            "apply SPATIALIZE first");
      }
      return Status::OK();
  }
  return Status::OK();
}

/// Row-level expression evaluation (all names resolved beforehand).
bool EvalExpr(const Expr& expr, const PigRow& row,
              const std::vector<std::string>& schema) {
  switch (expr.kind) {
    case Expr::Kind::kCompare: {
      auto idx = ColumnIndex(schema, expr.column);
      if (!idx.ok()) return false;
      return CompareValues(row.fields[idx.ValueOrDie()], expr.op,
                           expr.literal);
    }
    case Expr::Kind::kAnd:
      return EvalExpr(*expr.lhs, row, schema) &&
             EvalExpr(*expr.rhs, row, schema);
    case Expr::Kind::kOr:
      return EvalExpr(*expr.lhs, row, schema) ||
             EvalExpr(*expr.rhs, row, schema);
    case Expr::Kind::kNot:
      return !EvalExpr(*expr.lhs, row, schema);
    case Expr::Kind::kSpatialPred: {
      if (!row.st.has_value()) return false;
      JoinPredicate pred;
      pred.type = expr.pred;
      pred.max_distance = expr.max_distance;
      return pred.Eval(*row.st, *expr.query);
    }
  }
  return false;
}

/// Universe envelope of a spatialized relation.
Envelope UniverseOf(const RDD<PigRow>& rdd) {
  // Envelope is a monoid under ExpandToInclude, so map + fold suffices.
  return rdd
      .Map([](PigRow& row) {
        return row.st.has_value() ? row.st->envelope() : Envelope();
      })
      .Fold(Envelope(), [](Envelope acc, const Envelope& env) {
        acc.ExpandToInclude(env);
        return acc;
      });
}

std::string FormatRow(const PigRow& row) {
  std::string line;
  for (size_t i = 0; i < row.fields.size(); ++i) {
    if (i > 0) line += ", ";
    line += FormatPigValue(row.fields[i]);
  }
  if (row.st.has_value()) {
    line += " | " + row.st->ToString();
  }
  return line;
}

}  // namespace

std::string FormatPigValue(const PigValue& value) {
  if (std::holds_alternative<int64_t>(value)) {
    return std::to_string(std::get<int64_t>(value));
  }
  if (std::holds_alternative<double>(value)) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", std::get<double>(value));
    return buf;
  }
  return std::get<std::string>(value);
}

Interpreter::Interpreter(Context* ctx, std::ostream* out)
    : ctx_(ctx), out_(out) {}

Status Interpreter::RunScript(const std::string& source) {
  STARK_ASSIGN_OR_RETURN(Program program, Parse(source));
  return Run(program);
}

Status Interpreter::RunScriptOptimized(const std::string& source,
                                       OptimizerReport* report) {
  STARK_ASSIGN_OR_RETURN(Program program, Parse(source));
  return Run(Optimize(program, report));
}

namespace {

bool ProducesRelation(Statement::Kind kind) {
  switch (kind) {
    case Statement::Kind::kDump:
    case Statement::Kind::kStore:
    case Statement::Kind::kDescribe:
    case Statement::Kind::kSet:
    case Statement::Kind::kStream:
    case Statement::Kind::kWindow:
    case Statement::Kind::kPattern:
    case Statement::Kind::kEmit:
      return false;
    default:
      return true;
  }
}

}  // namespace

Status Interpreter::RunScriptAnalyze(const std::string& source,
                                     AnalyzeReport* report) {
  STARK_ASSIGN_OR_RETURN(Program program, Parse(source));
  analyze_stats_.Reset();
  analyze_mode_ = true;
  // Install a QueryProfile collector for the duration of the script: every
  // engine job that runs under a statement's ProfileNodeScope nests inside
  // that statement's node.
  obs::ProfileCollector collector("EXPLAIN ANALYZE");
  obs::ProfileCollectorScope collector_scope(&collector);
  Stopwatch total;
  Status status = Status::OK();
  for (const Statement& stmt : program.statements) {
    status = CheckCancelled();
    if (!status.ok()) break;
    OperatorProfile prof;
    prof.statement = FormatStatement(stmt);
    const QueryStats::Snapshot before = analyze_stats_.Snap();
    Stopwatch sw;
    {
      obs::ProfileNodeScope stmt_scope(&collector, prof.statement,
                                       obs::ProfileNodeKind::kStatement);
      status = Execute(stmt);
      if (status.ok() && ProducesRelation(stmt.kind)) {
        auto it = relations_.find(stmt.target);
        if (it != relations_.end()) {
          // Materialize now (cached) so this statement's evaluation cost
          // and pruning counters are attributed to it, not to a later
          // consumer.
          try {
            it->second.rdd = it->second.rdd.Cache();
            prof.rows_out = it->second.rdd.Count();
          } catch (const StatusError& e) {
            status = e.status();
          }
          if (status.ok()) {
            prof.produced_relation = true;
            prof.num_partitions = it->second.rdd.NumPartitions();
          }
        }
      }
      prof.wall_ms = sw.ElapsedMillis();
      if (stmt_scope.node() != nullptr) {
        stmt_scope.node()->wall_ms = prof.wall_ms;
        stmt_scope.node()->rows_out = prof.rows_out;
        stmt_scope.node()->partitions = prof.num_partitions;
        if (!status.ok()) {
          stmt_scope.node()->failed = true;
          stmt_scope.node()->error = status.ToString();
        }
      }
    }
    // Copy the statement's profile node (the last child of the root) into
    // the operator profile before the next Push can grow root.children.
    if (!collector.root().children.empty()) {
      prof.profile = collector.root().children.back();
    }
    if (!status.ok()) break;  // the failed statement stays in the tree only
    prof.filter = analyze_stats_.Snap().Delta(before);
    if (report != nullptr) report->operators.push_back(std::move(prof));
  }
  if (report != nullptr) {
    report->total_ms = total.ElapsedMillis();
    collector.mutable_root().wall_ms = report->total_ms;
    report->profile = collector.root();
  }
  analyze_mode_ = false;
  return status;
}

Status Interpreter::Run(const Program& program) {
  if (!profile_enabled_) {
    for (const Statement& stmt : program.statements) {
      STARK_RETURN_NOT_OK(CheckCancelled());
      STARK_RETURN_NOT_OK(Execute(stmt));
    }
    return Status::OK();
  }
  // SET obs.profile 1: collect a QueryProfile for the script and print the
  // tree when it finishes (successfully or not).
  obs::ProfileCollector collector("script");
  obs::ProfileCollectorScope collector_scope(&collector);
  Status status = Status::OK();
  for (const Statement& stmt : program.statements) {
    status = CheckCancelled();
    if (!status.ok()) break;
    Stopwatch sw;
    obs::ProfileNodeScope stmt_scope(&collector, FormatStatement(stmt),
                                     obs::ProfileNodeKind::kStatement);
    status = Execute(stmt);
    if (stmt_scope.node() != nullptr) {
      stmt_scope.node()->wall_ms = sw.ElapsedMillis();
      if (!status.ok()) {
        stmt_scope.node()->failed = true;
        stmt_scope.node()->error = status.ToString();
      }
    }
    if (!status.ok()) break;
  }
  (*out_) << obs::FormatProfileTree(collector.root());
  return status;
}

void Interpreter::set_cancel_token(std::shared_ptr<CancelToken> token) {
  cancel_token_ = token;
  ctx_->set_cancel_token(std::move(token));
}

Status Interpreter::CheckCancelled() const {
  if (cancel_token_ != nullptr && cancel_token_->requested()) {
    return Status::Cancelled("piglet: script cancelled");
  }
  return Status::OK();
}

PigRow RowFromStreamEvent(const stream::StreamEvent& event) {
  PigRow row;
  row.fields = {event.id, event.category,
                static_cast<int64_t>(event.event_time()),
                event.obj.geo().ToWkt()};
  row.st = event.obj;
  return row;
}

void Interpreter::BindRelation(const std::string& name, PigRelation rel) {
  relations_[name] = std::move(rel);
}

Result<const PigRelation*> Interpreter::relation(
    const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::KeyError("piglet: unknown relation '" + name + "'");
  }
  return &it->second;
}

Result<const PigRelation*> Interpreter::Input(const Statement& stmt) const {
  return relation(stmt.input);
}

Status Interpreter::Execute(const Statement& stmt) {
  static obs::Counter* const slow_queries =
      obs::DefaultMetrics().GetCounter("engine.query.slow");
  Stopwatch sw;
  // Actions materialize through the infallible RDD wrappers, which rethrow
  // a terminal job Status (deadline, cancellation, exhausted retries) as
  // StatusError; surface it as this statement's Status instead of letting
  // it unwind past the shell's REPL loop.
  Status status;
  try {
    status = ExecuteImpl(stmt);
  } catch (const StatusError& e) {
    status = e.status();
  }
  // Slow-query log: a statement is the query unit of the Piglet layer.
  const double slow_ms = obs::GlobalSlowLog().slow_query_ms();
  if (slow_ms > 0 && sw.ElapsedMillis() > slow_ms) {
    slow_queries->Increment();
    std::fprintf(stderr, "[stark] slow query: %.1f ms (threshold %.1f ms): %s\n",
                 sw.ElapsedMillis(), slow_ms,
                 FormatStatement(stmt).c_str());
  }
  return status;
}

Status Interpreter::ExecuteImpl(const Statement& stmt) {
  switch (stmt.kind) {
    case Statement::Kind::kLoad: {
      STARK_ASSIGN_OR_RETURN(PigRelation rel, ExecLoad(stmt));
      relations_[stmt.target] = std::move(rel);
      return Status::OK();
    }
    case Statement::Kind::kSpatialize: {
      STARK_ASSIGN_OR_RETURN(PigRelation rel, ExecSpatialize(stmt));
      relations_[stmt.target] = std::move(rel);
      return Status::OK();
    }
    case Statement::Kind::kFilter: {
      STARK_ASSIGN_OR_RETURN(PigRelation rel, ExecFilter(stmt));
      relations_[stmt.target] = std::move(rel);
      return Status::OK();
    }
    case Statement::Kind::kPartition: {
      STARK_ASSIGN_OR_RETURN(PigRelation rel, ExecPartition(stmt));
      relations_[stmt.target] = std::move(rel);
      return Status::OK();
    }
    case Statement::Kind::kIndex: {
      STARK_ASSIGN_OR_RETURN(const PigRelation* in, Input(stmt));
      if (!in->spatialized) {
        return Status::InvalidArgument(
            "piglet: INDEX requires a spatialized relation");
      }
      PigRelation rel = *in;
      rel.index_order = stmt.index_order;
      relations_[stmt.target] = std::move(rel);
      return Status::OK();
    }
    case Statement::Kind::kJoin: {
      STARK_ASSIGN_OR_RETURN(PigRelation rel, ExecJoin(stmt));
      relations_[stmt.target] = std::move(rel);
      return Status::OK();
    }
    case Statement::Kind::kKnn: {
      STARK_ASSIGN_OR_RETURN(PigRelation rel, ExecKnn(stmt));
      relations_[stmt.target] = std::move(rel);
      return Status::OK();
    }
    case Statement::Kind::kCluster: {
      STARK_ASSIGN_OR_RETURN(PigRelation rel, ExecCluster(stmt));
      relations_[stmt.target] = std::move(rel);
      return Status::OK();
    }
    case Statement::Kind::kAggregate: {
      STARK_ASSIGN_OR_RETURN(PigRelation rel, ExecAggregate(stmt));
      relations_[stmt.target] = std::move(rel);
      return Status::OK();
    }
    case Statement::Kind::kLimit: {
      STARK_ASSIGN_OR_RETURN(const PigRelation* in, Input(stmt));
      PigRelation rel = *in;
      std::vector<PigRow> rows = in->rdd.Take(stmt.limit);
      rel.rdd = MakeRDD(ctx_, std::move(rows), 1);
      rel.partitioner = nullptr;
      // The rows no longer match the bound snapshot: a later spatial FILTER
      // must evaluate these rows, not probe the full snapshot R-tree.
      rel.snapshot = nullptr;
      relations_[stmt.target] = std::move(rel);
      return Status::OK();
    }
    case Statement::Kind::kDump:
      return ExecDump(stmt);
    case Statement::Kind::kStore:
      return ExecStore(stmt);
    case Statement::Kind::kDescribe:
      return ExecDescribe(stmt);
    case Statement::Kind::kSet:
      return ExecSet(stmt);
    case Statement::Kind::kStream:
      return ExecStream(stmt);
    case Statement::Kind::kWindow:
      return ExecWindow(stmt);
    case Statement::Kind::kPattern:
      return ExecPattern(stmt);
    case Statement::Kind::kEmit:
      return ExecEmit(stmt);
  }
  return Status::UnknownError("piglet: unhandled statement");
}

Status Interpreter::ExecSet(const Statement& stmt) {
  const std::string& key = stmt.set_key;
  const double value = stmt.set_value;
  if (set_hook_) {
    STARK_ASSIGN_OR_RETURN(const bool handled, set_hook_(key, value));
    if (handled) return Status::OK();
  }
  if (key == "job.deadline_ms") {
    if (value < 0) {
      return Status::InvalidArgument("piglet: job.deadline_ms must be >= 0");
    }
    ctx_->set_job_deadline_ms(static_cast<uint64_t>(value));
    return Status::OK();
  }
  if (key == "job.speculation") {
    SpeculationPolicy policy = ctx_->speculation_policy();
    policy.enabled = value != 0;
    ctx_->set_speculation_policy(policy);
    return Status::OK();
  }
  if (key == "job.speculation_multiplier") {
    if (value < 1.0) {
      return Status::InvalidArgument(
          "piglet: job.speculation_multiplier must be >= 1");
    }
    SpeculationPolicy policy = ctx_->speculation_policy();
    policy.multiplier = value;
    ctx_->set_speculation_policy(policy);
    return Status::OK();
  }
  if (key == "job.speculation_quantile") {
    if (value < 0.0 || value > 1.0) {
      return Status::InvalidArgument(
          "piglet: job.speculation_quantile must be in [0, 1]");
    }
    SpeculationPolicy policy = ctx_->speculation_policy();
    policy.quantile = value;
    ctx_->set_speculation_policy(policy);
    return Status::OK();
  }
  if (key == "obs.profile") {
    profile_enabled_ = value != 0;
    return Status::OK();
  }
  if (key == "obs.slow_task_ms" || key == "obs.slow_query_ms") {
    // These mutate the process-wide slow log; in a served session that
    // would leak one client's setting into every other client's queries.
    if (session_mode_) {
      return Status::InvalidArgument(
          "piglet: '" + key +
          "' is process-global and cannot be set from a served session");
    }
    if (value < 0) {
      return Status::InvalidArgument("piglet: " + key + " must be >= 0");
    }
    if (key == "obs.slow_task_ms") {
      obs::GlobalSlowLog().set_slow_task_ms(value);
    } else {
      obs::GlobalSlowLog().set_slow_query_ms(value);
    }
    return Status::OK();
  }
  return Status::InvalidArgument("piglet:" + std::to_string(stmt.line) +
                                 ": unknown SET key '" + key +
                                 "' (want job.deadline_ms, job.speculation, "
                                 "job.speculation_multiplier, "
                                 "job.speculation_quantile, obs.profile, "
                                 "obs.slow_task_ms, or obs.slow_query_ms)");
}

Status Interpreter::ExecStream(const Statement& stmt) {
  StreamDef def;
  def.source = stmt.stream_source;
  def.gen_count = stmt.gen_count;
  def.gen_seed = stmt.gen_seed;
  def.gen_step = stmt.gen_step;
  def.path = stmt.path;
  streams_[stmt.target] = std::move(def);
  return Status::OK();
}

Status Interpreter::ExecWindow(const Statement& stmt) {
  if (streams_.find(stmt.input) == streams_.end()) {
    return Status::KeyError("piglet: unknown stream '" + stmt.input + "'");
  }
  WindowDef def;
  def.stream = stmt.input;
  def.spec.size = stmt.window_size;
  def.spec.slide = stmt.window_slide;
  def.lateness = stmt.window_lateness;
  windows_[stmt.target] = std::move(def);
  return Status::OK();
}

Status Interpreter::ExecPattern(const Statement& stmt) {
  if (windows_.find(stmt.input) == windows_.end()) {
    return Status::KeyError("piglet: unknown window '" + stmt.input + "'");
  }
  PatternDef def;
  def.window = stmt.input;
  stream::PatternSpec& spec = def.spec;
  switch (stmt.pattern_kind) {
    case StreamPatternKind::kSequence:
      spec.kind = stream::PatternKind::kSequence;
      break;
    case StreamPatternKind::kAbsence:
      spec.kind = stream::PatternKind::kAbsence;
      break;
    case StreamPatternKind::kCount:
      spec.kind = stream::PatternKind::kCount;
      break;
  }
  spec.within = stmt.pattern_within;
  spec.threshold = stmt.pattern_threshold;
  if (stmt.pattern_cmp == ">=") spec.cmp = stream::CountCmp::kGe;
  else if (stmt.pattern_cmp == ">") spec.cmp = stream::CountCmp::kGt;
  else if (stmt.pattern_cmp == "<=") spec.cmp = stream::CountCmp::kLe;
  else if (stmt.pattern_cmp == "<") spec.cmp = stream::CountCmp::kLt;
  else if (stmt.pattern_cmp == "==") spec.cmp = stream::CountCmp::kEq;
  else {
    return Status::InvalidArgument("piglet: bad COUNT comparison '" +
                                   stmt.pattern_cmp + "'");
  }
  for (const std::string& category : stmt.pattern_categories) {
    stream::StepPredicate step;
    step.category = category;
    if (stmt.pattern_region.has_value()) {
      step.region = stmt.pattern_region;
      step.pred.type = stmt.pattern_region_pred;
      step.pred.max_distance = stmt.pattern_region_distance;
    }
    spec.steps.push_back(std::move(step));
  }
  patterns_[stmt.target] = std::move(def);
  return Status::OK();
}

Status Interpreter::ExecEmit(const Statement& stmt) {
  // EMIT accepts either a pattern or a bare window; resolve the chain
  // pattern -> window -> stream.
  const PatternDef* pattern = nullptr;
  const WindowDef* window = nullptr;
  const auto pit = patterns_.find(stmt.input);
  if (pit != patterns_.end()) {
    pattern = &pit->second;
    const auto wit = windows_.find(pattern->window);
    if (wit == windows_.end()) {
      return Status::KeyError("piglet: unknown window '" + pattern->window +
                              "'");
    }
    window = &wit->second;
  } else {
    const auto wit = windows_.find(stmt.input);
    if (wit == windows_.end()) {
      return Status::KeyError("piglet: unknown window or pattern '" +
                              stmt.input + "'");
    }
    window = &wit->second;
  }
  const auto sit = streams_.find(window->stream);
  if (sit == streams_.end()) {
    return Status::KeyError("piglet: unknown stream '" + window->stream +
                            "'");
  }
  const StreamDef& source = sit->second;

  stream::StreamContext::Options options;
  options.window = window->spec;
  if (pattern != nullptr) options.pattern = pattern->spec;
  stream::StreamContext sc(ctx_, options);
  std::unique_ptr<stream::StreamSource> src;
  if (source.source == StreamSourceKind::kGenerator) {
    stream::GeneratorOptions gen;
    gen.count = static_cast<size_t>(source.gen_count);
    gen.seed = static_cast<uint64_t>(source.gen_seed);
    gen.time_step = source.gen_step;
    // The generator shuffles arrivals up to the window's declared lateness
    // bound: disorder == bound, so the replay exercises out-of-order
    // delivery without ever actually losing an event.
    gen.disorder = window->lateness;
    src = std::make_unique<stream::GeneratorSource>(gen);
  } else {
    src = std::make_unique<stream::CsvTailSource>(source.path);
  }
  sc.AddSource(std::move(src), window->lateness);
  const bool has_pattern = pattern != nullptr;
  sc.SetSink([this, has_pattern](const stream::WindowResult& result) {
    (*out_) << "[" << result.window.start << "," << result.window.end
            << ") events=" << result.window.events.size();
    if (has_pattern) (*out_) << " matches=" << result.matches.size();
    (*out_) << "\n";
    for (const stream::PatternMatch& m : result.matches) {
      (*out_) << "  match count=" << m.count;
      for (const stream::StreamEvent& e : m.events) {
        (*out_) << " " << e.id << "@" << e.event_time();
      }
      (*out_) << "\n";
    }
  });
  STARK_RETURN_NOT_OK(sc.RunToCompletion());
  const stream::StreamStats stats = sc.stats();
  (*out_) << "stream " << window->stream << ": ingested=" << stats.ingested
          << " accepted=" << stats.accepted << " late=" << stats.late
          << " duplicates=" << stats.duplicates
          << " windows=" << stats.windows_fired
          << " matches=" << stats.matches << "\n";
  return Status::OK();
}

Result<PigRelation> Interpreter::ExecLoad(const Statement& stmt) {
  STARK_ASSIGN_OR_RETURN(std::vector<EventRecord> records,
                         ReadEventsCsv(stmt.path));
  std::vector<PigRow> rows;
  rows.reserve(records.size());
  for (EventRecord& rec : records) {
    PigRow row;
    row.fields = {rec.id, std::move(rec.category), rec.time,
                  std::move(rec.wkt)};
    rows.push_back(std::move(row));
  }
  PigRelation rel;
  rel.schema = {"id", "category", "time", "wkt"};
  rel.rdd = MakeRDD(ctx_, std::move(rows));
  return rel;
}

Result<PigRelation> Interpreter::ExecSpatialize(const Statement& stmt) {
  STARK_ASSIGN_OR_RETURN(const PigRelation* in, Input(stmt));
  STARK_ASSIGN_OR_RETURN(size_t wkt_idx, ColumnIndex(in->schema, "wkt"));
  STARK_ASSIGN_OR_RETURN(size_t time_idx, ColumnIndex(in->schema, "time"));

  // Eagerly spatialize so WKT errors surface here, not inside a later
  // lazy evaluation.
  std::vector<PigRow> rows = in->rdd.Collect();
  for (PigRow& row : rows) {
    if (!std::holds_alternative<std::string>(row.fields[wkt_idx])) {
      return Status::InvalidArgument("piglet: wkt column is not a string");
    }
    if (!std::holds_alternative<int64_t>(row.fields[time_idx])) {
      return Status::InvalidArgument("piglet: time column is not an integer");
    }
    STARK_ASSIGN_OR_RETURN(
        STObject obj,
        STObject::FromWkt(std::get<std::string>(row.fields[wkt_idx]),
                          std::get<int64_t>(row.fields[time_idx])));
    row.st = std::move(obj);
  }
  PigRelation rel;
  rel.schema = in->schema;
  rel.rdd = MakeRDD(ctx_, std::move(rows));
  rel.spatialized = true;
  return rel;
}

Result<PigRelation> Interpreter::ExecFilter(const Statement& stmt) {
  STARK_ASSIGN_OR_RETURN(const PigRelation* in, Input(stmt));
  STARK_RETURN_NOT_OK(
      ValidateExpr(*stmt.filter, in->schema, in->spatialized));

  // Serving layer: a spatial predicate over a snapshot-bound relation
  // probes the snapshot's prebuilt packed R-tree directly — no per-query
  // index build, one single-task job (runs inline on the calling worker),
  // so point lookups stay cheap even when the shared pool is saturated.
  if (in->snapshot != nullptr &&
      stmt.filter->kind == Expr::Kind::kSpatialPred) {
    return ExecSnapshotFilter(stmt, *in);
  }

  PigRelation rel = *in;

  // A pure spatial predicate goes through the SpatialRDD operator so that
  // partition pruning and live indexing apply (§2.2, §2.3).
  if (stmt.filter->kind == Expr::Kind::kSpatialPred) {
    const Expr& e = *stmt.filter;
    JoinPredicate pred;
    pred.type = e.pred;
    pred.max_distance = e.max_distance;

    RDD<std::pair<STObject, PigRow>> pairs =
        in->rdd.Map([](PigRow& row) {
          STObject key = *row.st;
          return std::make_pair(std::move(key), std::move(row));
        });
    SpatialRDD<PigRow> spatial(std::move(pairs), in->partitioner);
    QueryStats* stats = analyze_mode_ ? &analyze_stats_ : nullptr;
    RDD<std::pair<STObject, PigRow>> filtered =
        in->index_order > 0
            ? spatial.LiveIndex(in->index_order).Filter(*e.query, pred, stats)
            : spatial.Filter(*e.query, pred, stats);
    rel.rdd = filtered.Map([](std::pair<STObject, PigRow>& p) {
      PigRow row = std::move(p.second);
      row.st = std::move(p.first);
      return row;
    });
    return rel;
  }

  // General expression: per-row evaluation (schema captured by value). The
  // output rows diverge from the bound snapshot, so drop the snapshot
  // binding — otherwise a later spatial FILTER would take the snapshot
  // fast path and probe the full R-tree, resurrecting rows removed here.
  rel.snapshot = nullptr;
  const Expr* expr = stmt.filter.get();
  const std::vector<std::string> schema = in->schema;
  // The Expr lives in the Program owned by the caller; relations built from
  // it are materialized before Run() returns, so evaluate eagerly to avoid
  // dangling references in the lazy lineage.
  std::vector<PigRow> rows = in->rdd.Collect();
  std::vector<PigRow> kept;
  for (PigRow& row : rows) {
    if (EvalExpr(*expr, row, schema)) kept.push_back(std::move(row));
  }
  rel.rdd = MakeRDD(ctx_, std::move(kept));
  rel.partitioner = nullptr;
  return rel;
}

Result<PigRelation> Interpreter::ExecSnapshotFilter(const Statement& stmt,
                                                    const PigRelation& in) {
  static obs::Counter* const probes =
      obs::DefaultMetrics().GetCounter("serve.snapshot.probes");
  static obs::Counter* const global_candidates =
      obs::DefaultMetrics().GetCounter("serve.snapshot.candidates");
  static obs::Counter* const global_results =
      obs::DefaultMetrics().GetCounter("serve.snapshot.results");

  const Expr& e = *stmt.filter;
  JoinPredicate pred;
  pred.type = e.pred;
  pred.max_distance = e.max_distance;
  const STObject query = *e.query;
  // Keep the snapshot alive independently of the relation (the pin may be
  // released while this statement's output is still being consumed).
  const std::shared_ptr<const serve::DatasetSnapshot> snap = in.snapshot;
  QueryStats* const stats = analyze_mode_ ? &analyze_stats_ : nullptr;

  std::vector<PigRow> kept;
  STARK_RETURN_NOT_OK(ctx_->TryRunTasks(
      "serve.snapshot.filter", 1, [&](size_t) {
        const std::vector<stream::StreamEvent>& events = *snap->events;
        uint64_t candidates = 0;
        const bool use_columnar =
            columnar::Enabled() && columnar_refine::Refinable(pred);
        if (use_columnar) {
          // Columnar refine: the epoch is immutable, so its slab is built
          // once (on the first spatial FILTER) and shared by every later
          // query against the same snapshot version.
          std::shared_ptr<const ColumnarBatch> batch;
          {
            std::lock_guard<std::mutex> lock(snap->columnar->mu);
            batch = snap->columnar->batch;
            if (batch == nullptr) {
              batch = std::make_shared<const ColumnarBatch>(
                  ColumnarBatch::Build(
                      events,
                      [](const stream::StreamEvent& ev) -> const STObject& {
                        return ev.obj;
                      }));
              snap->columnar->batch = batch;
              GlobalColumnarMetrics().batches->Increment();
            } else {
              GlobalColumnarMetrics().slab_reuse->Increment();
            }
          }
          std::vector<uint32_t> cand;
          auto collect = [&](const Envelope&, const uint32_t& idx) {
            if ((++candidates & 1023u) == 0) ThrowIfTaskCancelled();
            cand.push_back(idx);
          };
          if (pred.Prunable()) {
            const Envelope probe =
                query.envelope().Expanded(pred.EnvelopeMargin());
            snap->tree->Query(probe, collect);
          } else {
            snap->tree->ForEach(collect);
          }
          if (!cand.empty()) {
            PreparedGeometry prep(query.geo());
            columnar_refine::Stats cstats;
            std::vector<uint32_t> scratch;
            columnar_refine::RefineCandidates(
                *batch, pred, query, prep, /*cand_left=*/true, &cand,
                [&](uint32_t j) -> const STObject& { return events[j].obj; },
                &cstats, &scratch);
            const ColumnarMetricSet& cm = GlobalColumnarMetrics();
            cm.rows->Add(cstats.kernel_rows);
            cm.fallbacks->Add(cstats.fallback_rows);
            kept.reserve(cand.size());
            for (const uint32_t j : cand) {
              kept.push_back(RowFromStreamEvent(events[j]));
            }
          }
        } else {
          // Same candidate/refine protocol as IndexedSpatialRDD::Filter:
          // envelope probe expanded by the predicate margin, exact predicate
          // bound once so the query geometry is prepared and reused.
          BoundPredicate bound(pred, query,
                               BoundPredicate::Side::kCandidateLeft);
          auto refine = [&](const Envelope&, const uint32_t& idx) {
            if ((++candidates & 1023u) == 0) ThrowIfTaskCancelled();
            const stream::StreamEvent& ev = events[idx];
            if (bound.Eval(ev.obj)) kept.push_back(RowFromStreamEvent(ev));
          };
          if (pred.Prunable()) {
            const Envelope probe =
                query.envelope().Expanded(pred.EnvelopeMargin());
            snap->tree->Query(probe, refine);
          } else {
            snap->tree->ForEach(refine);
          }
        }
        global_candidates->Add(candidates);
        global_results->Add(kept.size());
        if (stats != nullptr) {
          ++stats->partitions_scanned;
          stats->candidates += candidates;
          stats->results += kept.size();
        }
        if (obs::TaskSpan* span = obs::CurrentTaskSpan()) {
          span->records_in = candidates;
          span->records_out = kept.size();
          span->candidates = candidates;
          span->refined = kept.size();
        }
      }));
  probes->Increment();

  PigRelation rel;
  rel.schema = in.schema;
  rel.spatialized = true;
  rel.rdd = MakeRDD(ctx_, std::move(kept), 1);
  return rel;
}

Result<PigRelation> Interpreter::ExecPartition(const Statement& stmt) {
  STARK_ASSIGN_OR_RETURN(const PigRelation* in, Input(stmt));
  if (!in->spatialized) {
    return Status::InvalidArgument(
        "piglet: PARTITION requires a spatialized relation");
  }
  RDD<std::pair<STObject, PigRow>> pairs = in->rdd.Map([](PigRow& row) {
    STObject key = *row.st;
    return std::make_pair(std::move(key), std::move(row));
  });
  SpatialRDD<PigRow> spatial(pairs.Cache());

  const Envelope universe = UniverseOf(in->rdd);
  if (universe.IsEmpty()) {
    return Status::InvalidArgument("piglet: cannot partition empty relation");
  }
  std::shared_ptr<SpatialPartitioner> partitioner;
  if (stmt.partitioner == PartitionerKind::kGrid) {
    const size_t cells =
        std::max<size_t>(1, static_cast<size_t>(stmt.partitioner_param));
    const Envelope grown = universe.Expanded(universe.Width() * 1e-9 + 1e-9);
    if (stmt.time_buckets > 0) {
      // Spatio-temporal grid over the data's observed time range.
      Instant t_min = std::numeric_limits<Instant>::max();
      Instant t_max = std::numeric_limits<Instant>::min();
      for (const auto& [st, row] : spatial.rdd().Collect()) {
        if (st.HasTime()) {
          t_min = std::min(t_min, st.time()->start());
          t_max = std::max(t_max, st.time()->end());
        }
      }
      if (t_min > t_max) {
        return Status::InvalidArgument(
            "piglet: TIME partitioning needs temporal data");
      }
      partitioner = std::make_shared<SpatioTemporalGridPartitioner>(
          grown, cells, t_min, t_max, stmt.time_buckets);
    } else {
      partitioner = std::make_shared<GridPartitioner>(grown, cells);
    }
  } else {
    std::vector<Coordinate> centroids;
    for (const auto& [st, row] : spatial.rdd().Collect()) {
      centroids.push_back(st.Centroid());
    }
    BSPartitioner::Options options;
    options.max_cost =
        std::max<size_t>(1, static_cast<size_t>(stmt.partitioner_param));
    partitioner = std::make_shared<BSPartitioner>(
        universe.Expanded(universe.Width() * 1e-9 + 1e-9), centroids,
        options);
  }
  SpatialRDD<PigRow> parted = spatial.PartitionBy(partitioner);

  PigRelation rel;
  rel.schema = in->schema;
  rel.spatialized = true;
  rel.index_order = in->index_order;
  rel.partitioner = partitioner;
  rel.rdd = parted.rdd().Map([](std::pair<STObject, PigRow>& p) {
    PigRow row = std::move(p.second);
    row.st = std::move(p.first);
    return row;
  }).Cache();
  // Force materialization now so the shuffle happens once.
  rel.rdd.Count();
  return rel;
}

Result<PigRelation> Interpreter::ExecJoin(const Statement& stmt) {
  STARK_ASSIGN_OR_RETURN(const PigRelation* left, relation(stmt.input));
  STARK_ASSIGN_OR_RETURN(const PigRelation* right, relation(stmt.input2));
  if (!left->spatialized || !right->spatialized) {
    return Status::InvalidArgument(
        "piglet: JOIN requires spatialized relations on both sides");
  }
  auto lift = [](const PigRelation& r) {
    return SpatialRDD<PigRow>(r.rdd.Map([](PigRow& row) {
      STObject key = *row.st;
      return std::make_pair(std::move(key), std::move(row));
    }),
                              r.partitioner);
  };
  JoinPredicate pred;
  pred.type = stmt.join_pred;
  pred.max_distance = stmt.join_distance;

  // An INDEXed left relation routes through the cached-index join path:
  // its partitions are indexed once (honoring the INDEX statement's order)
  // and the join probes those trees rather than building its own.
  JoinOptions options;
  auto joined = left->index_order > 0
                    ? SpatialJoin(lift(*left).Index(left->index_order),
                                  lift(*right), pred, options)
                    : SpatialJoin(lift(*left), lift(*right), pred, options);

  PigRelation rel;
  rel.spatialized = true;
  rel.schema = left->schema;
  for (const std::string& name : right->schema) {
    rel.schema.push_back("right_" + name);
  }
  rel.rdd = joined.Map(
      [](std::pair<std::pair<STObject, PigRow>,
                   std::pair<STObject, PigRow>>& p) {
        PigRow row = std::move(p.first.second);
        row.st = std::move(p.first.first);
        for (PigValue& v : p.second.second.fields) {
          row.fields.push_back(std::move(v));
        }
        return row;
      });
  return rel;
}

Result<PigRelation> Interpreter::ExecKnn(const Statement& stmt) {
  STARK_ASSIGN_OR_RETURN(const PigRelation* in, Input(stmt));
  if (!in->spatialized) {
    return Status::InvalidArgument(
        "piglet: KNN requires a spatialized relation");
  }
  SpatialRDD<PigRow> spatial(in->rdd.Map([](PigRow& row) {
    STObject key = *row.st;
    return std::make_pair(std::move(key), std::move(row));
  }),
                             in->partitioner);
  auto hits = spatial.Knn(*stmt.knn_query, stmt.knn_k);

  std::vector<PigRow> rows;
  rows.reserve(hits.size());
  for (auto& [dist, elem] : hits) {
    PigRow row = std::move(elem.second);
    row.st = std::move(elem.first);
    row.fields.push_back(dist);
    rows.push_back(std::move(row));
  }
  PigRelation rel;
  rel.spatialized = true;
  rel.schema = in->schema;
  rel.schema.push_back("knn_distance");
  rel.rdd = MakeRDD(ctx_, std::move(rows), 1);
  return rel;
}

Result<PigRelation> Interpreter::ExecCluster(const Statement& stmt) {
  STARK_ASSIGN_OR_RETURN(const PigRelation* in, Input(stmt));
  if (!in->spatialized) {
    return Status::InvalidArgument(
        "piglet: CLUSTER requires a spatialized relation");
  }
  const Envelope universe = UniverseOf(in->rdd);
  if (universe.IsEmpty()) {
    return Status::InvalidArgument("piglet: cannot cluster empty relation");
  }
  auto grid = std::make_shared<GridPartitioner>(
      universe.Expanded(universe.Width() * 1e-9 + 1e-9), stmt.cluster_grid);
  SpatialRDD<PigRow> spatial(in->rdd.Map([](PigRow& row) {
    STObject key = *row.st;
    return std::make_pair(std::move(key), std::move(row));
  }));
  DbscanParams params{stmt.dbscan_eps, stmt.dbscan_min_pts};
  auto clustered = DistributedDbscan(spatial, params, grid);

  PigRelation rel;
  rel.spatialized = true;
  rel.schema = in->schema;
  rel.schema.push_back("cluster");
  rel.partitioner = grid;
  rel.rdd = clustered.Map(
      [](std::pair<std::pair<STObject, PigRow>, int64_t>& p) {
        PigRow row = std::move(p.first.second);
        row.st = std::move(p.first.first);
        row.fields.push_back(p.second);
        return row;
      });
  return rel;
}

Result<PigRelation> Interpreter::ExecAggregate(const Statement& stmt) {
  STARK_ASSIGN_OR_RETURN(const PigRelation* in, Input(stmt));
  STARK_ASSIGN_OR_RETURN(size_t col,
                         ColumnIndex(in->schema, stmt.aggregate_column));
  // GROUP BY column + COUNT as a distributed reduceByKey (with map-side
  // combining), then sorted by key for deterministic output.
  RDD<std::pair<std::string, int64_t>> keyed =
      in->rdd.Map([col](PigRow& row) {
        return std::pair<std::string, int64_t>(
            FormatPigValue(row.fields[col]), 1);
      });
  auto counts = ReduceByKey(keyed, [](int64_t a, int64_t b) { return a + b; })
                    .Collect();
  std::sort(counts.begin(), counts.end());
  std::vector<PigRow> rows;
  rows.reserve(counts.size());
  for (auto& [key, count] : counts) {
    PigRow row;
    row.fields = {key, count};
    rows.push_back(std::move(row));
  }
  PigRelation rel;
  rel.schema = {stmt.aggregate_column, "count"};
  rel.rdd = MakeRDD(ctx_, std::move(rows), 1);
  return rel;
}

Status Interpreter::ExecDump(const Statement& stmt) {
  STARK_ASSIGN_OR_RETURN(const PigRelation* in, Input(stmt));
  for (const PigRow& row : in->rdd.Collect()) {
    (*out_) << "(" << FormatRow(row) << ")\n";
  }
  return Status::OK();
}

Status Interpreter::ExecStore(const Statement& stmt) {
  STARK_ASSIGN_OR_RETURN(const PigRelation* in, Input(stmt));
  std::string text;
  for (const PigRow& row : in->rdd.Collect()) {
    for (size_t i = 0; i < row.fields.size(); ++i) {
      if (i > 0) text += ',';
      std::string field = FormatPigValue(row.fields[i]);
      if (field.find_first_of(",\"\n") != std::string::npos) {
        std::string quoted = "\"";
        for (char c : field) {
          if (c == '"') quoted += '"';
          quoted += c;
        }
        quoted += '"';
        field = std::move(quoted);
      }
      text += field;
    }
    text += '\n';
  }
  return WriteFileBytes(stmt.path,
                        std::vector<char>(text.begin(), text.end()));
}

Status Interpreter::ExecDescribe(const Statement& stmt) {
  STARK_ASSIGN_OR_RETURN(const PigRelation* in, Input(stmt));
  (*out_) << stmt.input << ": (";
  for (size_t i = 0; i < in->schema.size(); ++i) {
    if (i > 0) (*out_) << ", ";
    (*out_) << in->schema[i];
  }
  (*out_) << ")";
  if (in->spatialized) (*out_) << " spatialized";
  if (in->partitioner) {
    (*out_) << " partitioned=" << in->partitioner->Name() << "("
            << in->partitioner->NumPartitions() << ")";
  }
  if (in->index_order > 0) (*out_) << " index_order=" << in->index_order;
  (*out_) << "\n";
  return Status::OK();
}

}  // namespace piglet
}  // namespace stark
