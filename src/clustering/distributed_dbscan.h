/// \file distributed_dbscan.h
/// STARK's density-based clustering operator (§2.3): DBSCAN for the engine,
/// inspired by MR-DBSCAN [1]. The implementation exploits the spatial
/// partitioning: points within eps-distance of a partition border are
/// replicated into the respective neighboring partitions, a local
/// clustering runs in parallel per partition, and a merge step connects
/// local clusters through the replicated points.
#ifndef STARK_CLUSTERING_DISTRIBUTED_DBSCAN_H_
#define STARK_CLUSTERING_DISTRIBUTED_DBSCAN_H_

#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "clustering/dbscan.h"
#include "clustering/union_find.h"
#include "partition/partitioner.h"
#include "spatial_rdd/spatial_rdd.h"

namespace stark {

/// \brief Distributed DBSCAN over a spatial RDD.
///
/// Clustering is performed on the centroids of the spatial components
/// (events are points in the paper's workloads). Returns the input elements
/// paired with a global cluster id (kNoise for noise), partitioned by
/// \p partitioner. Global ids are dense, starting at 0.
template <typename V>
RDD<std::pair<std::pair<STObject, V>, int64_t>> DistributedDbscan(
    const SpatialRDD<V>& data, const DbscanParams& params,
    const std::shared_ptr<SpatialPartitioner>& partitioner) {
  using Element = std::pair<STObject, V>;
  Context* ctx = data.ctx();
  const size_t num_parts = partitioner->NumPartitions();

  // Materialize elements; the global point id is the vector index.
  std::vector<Element> elements = data.rdd().Collect();
  const size_t n = elements.size();

  // Route every point to its home partition plus every neighboring
  // partition whose bounds lie within eps (border replication).
  struct LocalPoint {
    size_t id;
    Coordinate c;
  };
  std::vector<std::vector<LocalPoint>> local_points(num_parts);
  std::vector<size_t> home(n);
  for (size_t id = 0; id < n; ++id) {
    const Coordinate c = elements[id].first.Centroid();
    home[id] = partitioner->PartitionFor(c);
    local_points[home[id]].push_back({id, c});
    for (size_t p : partitioner->PartitionsWithinDistance(c, params.eps)) {
      if (p != home[id]) local_points[p].push_back({id, c});
    }
  }

  // Local clustering, in parallel per partition.
  struct Occurrence {
    size_t partition;
    int64_t label;
    bool core;
  };
  std::vector<DbscanResult> local_results(num_parts);
  ctx->pool().ParallelFor(num_parts, [&](size_t p) {
    std::vector<Coordinate> coords;
    coords.reserve(local_points[p].size());
    for (const LocalPoint& lp : local_points[p]) coords.push_back(lp.c);
    local_results[p] = DbscanLocal(coords, params);
  });

  // Per-point occurrence lists (home occurrence first, replicas after).
  std::vector<std::vector<Occurrence>> occurrences(n);
  for (size_t p = 0; p < num_parts; ++p) {
    for (size_t k = 0; k < local_points[p].size(); ++k) {
      const size_t id = local_points[p][k].id;
      const Occurrence occ{p, local_results[p].labels[k],
                           local_results[p].core[k] != 0};
      if (p == home[id]) {
        occurrences[id].insert(occurrences[id].begin(), occ);
      } else {
        occurrences[id].push_back(occ);
      }
    }
  }

  // Merge step: local clusters C1 and C2 merge when they share a point that
  // is a core point in at least one of them (MR-DBSCAN merge rule).
  std::vector<size_t> cluster_base(num_parts + 1, 0);
  for (size_t p = 0; p < num_parts; ++p) {
    cluster_base[p + 1] = cluster_base[p] + local_results[p].num_clusters;
  }
  const size_t total_local_clusters = cluster_base[num_parts];
  auto key_of = [&](const Occurrence& occ) {
    return cluster_base[occ.partition] + static_cast<size_t>(occ.label);
  };
  UnionFind uf(total_local_clusters);
  for (size_t id = 0; id < n; ++id) {
    const auto& occs = occurrences[id];
    if (occs.size() < 2) continue;
    for (const Occurrence& core_occ : occs) {
      if (!core_occ.core || core_occ.label == kNoise) continue;
      for (const Occurrence& other : occs) {
        if (other.label == kNoise) continue;
        uf.Union(key_of(core_occ), key_of(other));
      }
    }
  }

  // Dense global ids per union-find root, assigned in deterministic order.
  std::unordered_map<size_t, int64_t> root_to_global;
  root_to_global.reserve(total_local_clusters);
  int64_t next_global = 0;
  auto global_of = [&](size_t key) {
    const size_t root = uf.Find(key);
    auto it = root_to_global.find(root);
    if (it != root_to_global.end()) return it->second;
    root_to_global.emplace(root, next_global);
    return next_global++;
  };

  // Final label: the home occurrence's cluster when labeled there; else any
  // labeled replica occurrence (a border point clustered only across the
  // border); else noise.
  std::vector<std::vector<std::pair<Element, int64_t>>> out(num_parts);
  for (size_t id = 0; id < n; ++id) {
    int64_t label = kNoise;
    for (const Occurrence& occ : occurrences[id]) {
      if (occ.label != kNoise) {
        label = global_of(key_of(occ));
        break;
      }
    }
    out[home[id]].emplace_back(std::move(elements[id]), label);
  }
  return MakeRDDFromPartitions(ctx, std::move(out));
}

}  // namespace stark

#endif  // STARK_CLUSTERING_DISTRIBUTED_DBSCAN_H_
