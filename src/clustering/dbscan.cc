#include "clustering/dbscan.h"

#include <deque>
#include <utility>
#include <vector>

#include "index/packed_rtree.h"

namespace stark {

DbscanResult DbscanLocal(const std::vector<Coordinate>& points,
                         const DbscanParams& params) {
  const size_t n = points.size();
  DbscanResult result;
  result.labels.assign(n, kNoise);
  result.core.assign(n, 0);
  if (n == 0) return result;

  // The point set is fixed for the whole run, so the packed (read-only)
  // tree serves the eps-neighborhood queries out of flat SoA arrays.
  std::vector<std::pair<Envelope, size_t>> entries;
  entries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    entries.emplace_back(Envelope(points[i]), i);
  }
  PackedRTree<size_t> tree(16, std::move(entries));

  const double eps = params.eps;
  const double eps2 = eps * eps;
  auto neighbors_of = [&](size_t i) {
    std::vector<size_t> out;
    const Envelope probe = Envelope(points[i]).Expanded(eps);
    tree.Query(probe, [&](const Envelope&, const size_t& j) {
      if (points[i].SquaredDistanceTo(points[j]) <= eps2) out.push_back(j);
    });
    return out;
  };

  std::vector<char> visited(n, 0);
  int64_t next_cluster = 0;
  for (size_t i = 0; i < n; ++i) {
    if (visited[i]) continue;
    visited[i] = 1;
    std::vector<size_t> seeds = neighbors_of(i);
    if (seeds.size() < params.min_pts) continue;  // not a core point (yet)

    const int64_t cluster = next_cluster++;
    result.labels[i] = cluster;
    result.core[i] = 1;
    std::deque<size_t> frontier(seeds.begin(), seeds.end());
    while (!frontier.empty()) {
      const size_t j = frontier.front();
      frontier.pop_front();
      if (result.labels[j] == kNoise) result.labels[j] = cluster;
      if (visited[j]) continue;
      visited[j] = 1;
      result.labels[j] = cluster;
      std::vector<size_t> j_neighbors = neighbors_of(j);
      if (j_neighbors.size() >= params.min_pts) {
        result.core[j] = 1;
        for (size_t k : j_neighbors) {
          if (!visited[k] || result.labels[k] == kNoise) {
            frontier.push_back(k);
          }
        }
      }
    }
  }
  result.num_clusters = static_cast<size_t>(next_cluster);
  return result;
}

}  // namespace stark
