/// \file dbscan.h
/// Sequential (single-partition) DBSCAN with R-tree-accelerated region
/// queries — the local clustering step of the paper's distributed operator
/// and the correctness reference for it.
#ifndef STARK_CLUSTERING_DBSCAN_H_
#define STARK_CLUSTERING_DBSCAN_H_

#include <cstdint>
#include <vector>

#include "geometry/coordinate.h"

namespace stark {

/// DBSCAN parameters: neighborhood radius and density threshold. A point is
/// a core point iff at least min_pts points (including itself) lie within
/// eps of it.
struct DbscanParams {
  double eps = 1.0;
  size_t min_pts = 5;
};

/// Label assigned to points that belong to no cluster.
inline constexpr int64_t kNoise = -1;

/// Output of a DBSCAN run: labels[i] is the cluster of points[i] (kNoise
/// for noise), core[i] marks core points, num_clusters the cluster count.
struct DbscanResult {
  std::vector<int64_t> labels;
  std::vector<char> core;
  size_t num_clusters = 0;
};

/// Runs DBSCAN over \p points. Deterministic: clusters are numbered in
/// first-visited order.
DbscanResult DbscanLocal(const std::vector<Coordinate>& points,
                         const DbscanParams& params);

}  // namespace stark

#endif  // STARK_CLUSTERING_DBSCAN_H_
