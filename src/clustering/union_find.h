/// \file union_find.h
/// Disjoint-set forest used by the DBSCAN merge step to connect local
/// clusters across partition borders.
#ifndef STARK_CLUSTERING_UNION_FIND_H_
#define STARK_CLUSTERING_UNION_FIND_H_

#include <cstddef>
#include <numeric>
#include <vector>

#include "common/macros.h"

namespace stark {

/// Union-find with path halving and union by size.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), size_t{0});
  }

  /// Representative of \p x's set.
  size_t Find(size_t x) {
    STARK_DCHECK(x < parent_.size());
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  /// Merges the sets of \p a and \p b; returns the new representative.
  size_t Union(size_t a, size_t b) {
    size_t ra = Find(a);
    size_t rb = Find(b);
    if (ra == rb) return ra;
    if (size_[ra] < size_[rb]) std::swap(ra, rb);
    parent_[rb] = ra;
    size_[ra] += size_[rb];
    return ra;
  }

  bool Connected(size_t a, size_t b) { return Find(a) == Find(b); }

  size_t size() const { return parent_.size(); }

 private:
  std::vector<size_t> parent_;
  std::vector<size_t> size_;
};

}  // namespace stark

#endif  // STARK_CLUSTERING_UNION_FIND_H_
