#include "geometry/predicates.h"

#include <algorithm>
#include <limits>

namespace stark {

namespace {

constexpr double kPointEps = 1e-12;

bool PointsEqual(const Coordinate& a, const Coordinate& b) {
  return std::abs(a.x - b.x) <= kPointEps && std::abs(a.y - b.y) <= kPointEps;
}

/// A non-owning view of one simple component of a (possibly multi) geometry.
struct SimplePart {
  GeometryType type;  // kPoint, kLineString or kPolygon
  Coordinate point{};
  const std::vector<Coordinate>* line = nullptr;
  const PolygonData* poly = nullptr;
};

std::vector<SimplePart> Decompose(const Geometry& g) {
  std::vector<SimplePart> parts;
  switch (g.type()) {
    case GeometryType::kPoint:
      parts.push_back({GeometryType::kPoint, g.AsPoint(), nullptr, nullptr});
      break;
    case GeometryType::kMultiPoint:
      for (const auto& c : g.coordinates()) {
        parts.push_back({GeometryType::kPoint, c, nullptr, nullptr});
      }
      break;
    case GeometryType::kLineString:
      parts.push_back(
          {GeometryType::kLineString, {}, &g.coordinates(), nullptr});
      break;
    case GeometryType::kPolygon:
    case GeometryType::kMultiPolygon:
      for (const auto& poly : g.polygons()) {
        parts.push_back({GeometryType::kPolygon, {}, nullptr, &poly});
      }
      break;
  }
  return parts;
}

/// Applies \p fn to every segment (a, b) of a ring or line.
template <typename Fn>
bool AnySegment(const std::vector<Coordinate>& coords, Fn fn) {
  for (size_t i = 0; i + 1 < coords.size(); ++i) {
    if (fn(coords[i], coords[i + 1])) return true;
  }
  return false;
}

/// Applies \p fn to every boundary segment of a polygon (shell + holes).
template <typename Fn>
bool AnyPolygonSegment(const PolygonData& poly, Fn fn) {
  if (AnySegment(poly.shell, fn)) return true;
  for (const auto& hole : poly.holes) {
    if (AnySegment(hole, fn)) return true;
  }
  return false;
}

bool PointOnLine(const Coordinate& p, const std::vector<Coordinate>& line) {
  return AnySegment(line, [&](const Coordinate& a, const Coordinate& b) {
    return PointOnSegment(p, a, b);
  });
}

// ---------------------------------------------------------------------------
// Intersects on simple parts
// ---------------------------------------------------------------------------

bool IntersectsSimple(const SimplePart& a, const SimplePart& b);

bool IntersectsPointPoly(const Coordinate& p, const PolygonData& poly) {
  return LocateInPolygon(p, poly) != RingLocation::kOutside;
}

bool IntersectsLineLine(const std::vector<Coordinate>& l1,
                        const std::vector<Coordinate>& l2) {
  return AnySegment(l1, [&](const Coordinate& a, const Coordinate& b) {
    return AnySegment(l2, [&](const Coordinate& c, const Coordinate& d) {
      return SegmentsIntersect(a, b, c, d);
    });
  });
}

bool IntersectsLinePoly(const std::vector<Coordinate>& line,
                        const PolygonData& poly) {
  // Either the line crosses/touches the boundary, or it lies entirely in the
  // interior — in the latter case every vertex is inside, so testing one
  // suffices once boundary intersection has been ruled out.
  const bool boundary_hit =
      AnySegment(line, [&](const Coordinate& a, const Coordinate& b) {
        return AnyPolygonSegment(
            poly, [&](const Coordinate& c, const Coordinate& d) {
              return SegmentsIntersect(a, b, c, d);
            });
      });
  if (boundary_hit) return true;
  return IntersectsPointPoly(line.front(), poly);
}

bool IntersectsPolyPoly(const PolygonData& pa, const PolygonData& pb) {
  const bool boundary_hit =
      AnyPolygonSegment(pa, [&](const Coordinate& a, const Coordinate& b) {
        return AnyPolygonSegment(
            pb, [&](const Coordinate& c, const Coordinate& d) {
              return SegmentsIntersect(a, b, c, d);
            });
      });
  if (boundary_hit) return true;
  // Disjoint boundaries: one polygon may still be nested inside the other.
  return IntersectsPointPoly(pa.shell.front(), pb) ||
         IntersectsPointPoly(pb.shell.front(), pa);
}

bool IntersectsSimple(const SimplePart& a, const SimplePart& b) {
  // Normalize order: point <= line <= polygon.
  if (static_cast<int>(a.type) > static_cast<int>(b.type)) {
    return IntersectsSimple(b, a);
  }
  switch (a.type) {
    case GeometryType::kPoint:
      switch (b.type) {
        case GeometryType::kPoint:
          return PointsEqual(a.point, b.point);
        case GeometryType::kLineString:
          return PointOnLine(a.point, *b.line);
        default:
          return IntersectsPointPoly(a.point, *b.poly);
      }
    case GeometryType::kLineString:
      if (b.type == GeometryType::kLineString) {
        return IntersectsLineLine(*a.line, *b.line);
      }
      return IntersectsLinePoly(*a.line, *b.poly);
    default:
      return IntersectsPolyPoly(*a.poly, *b.poly);
  }
}

// ---------------------------------------------------------------------------
// Contains on simple parts
// ---------------------------------------------------------------------------

/// True iff the open interiors of the segments cross at a single point.
bool ProperCrossing(const Coordinate& p1, const Coordinate& p2,
                    const Coordinate& q1, const Coordinate& q2) {
  const int o1 = Orientation(p1, p2, q1);
  const int o2 = Orientation(p1, p2, q2);
  const int o3 = Orientation(q1, q2, p1);
  const int o4 = Orientation(q1, q2, p2);
  return o1 != 0 && o2 != 0 && o3 != 0 && o4 != 0 && o1 != o2 && o3 != o4;
}

bool PolygonCoversPoint(const PolygonData& poly, const Coordinate& p) {
  return LocateInPolygon(p, poly) != RingLocation::kOutside;
}

/// Shared core of polygon-contains-line and polygon-contains-polygon: every
/// vertex and every segment midpoint of \p coords must be covered, and no
/// segment may properly cross the polygon boundary.
bool PolygonCoversPath(const PolygonData& poly,
                       const std::vector<Coordinate>& coords) {
  for (const auto& c : coords) {
    if (!PolygonCoversPoint(poly, c)) return false;
  }
  for (size_t i = 0; i + 1 < coords.size(); ++i) {
    const Coordinate& a = coords[i];
    const Coordinate& b = coords[i + 1];
    const bool crossing =
        AnyPolygonSegment(poly, [&](const Coordinate& c, const Coordinate& d) {
          return ProperCrossing(a, b, c, d);
        });
    if (crossing) return false;
    const Coordinate mid{(a.x + b.x) / 2.0, (a.y + b.y) / 2.0};
    if (!PolygonCoversPoint(poly, mid)) return false;
  }
  return true;
}

bool PolygonContainsPolygon(const PolygonData& outer,
                            const PolygonData& inner) {
  if (!PolygonCoversPath(outer, inner.shell)) return false;
  for (const auto& hole : inner.holes) {
    // Hole boundaries of the inner polygon must also stay inside the outer.
    if (!PolygonCoversPath(outer, hole)) return false;
  }
  // A hole of the outer polygon overlapping the inner polygon's interior
  // punches out area the inner polygon needs. Detect via (a) hole vertices
  // strictly inside the inner polygon, (b) hole-segment midpoints strictly
  // inside (catches vertex-on-boundary configurations), and (c) a
  // representative interior point of the hole (catches the exact-fill case
  // where the hole ring coincides with the inner shell).
  for (const auto& hole : outer.holes) {
    for (const auto& v : hole) {
      if (LocateInPolygon(v, inner) == RingLocation::kInside) return false;
    }
    for (size_t i = 0; i + 1 < hole.size(); ++i) {
      const Coordinate mid{(hole[i].x + hole[i + 1].x) / 2.0,
                           (hole[i].y + hole[i + 1].y) / 2.0};
      if (LocateInPolygon(mid, inner) == RingLocation::kInside) return false;
    }
    const Coordinate rep = RingCentroid(hole);
    if (LocateInRing(rep, hole) == RingLocation::kInside &&
        LocateInPolygon(rep, inner) == RingLocation::kInside) {
      return false;
    }
  }
  return true;
}

bool LineContainsLine(const std::vector<Coordinate>& a,
                      const std::vector<Coordinate>& b) {
  for (const auto& v : b) {
    if (!PointOnLine(v, a)) return false;
  }
  for (size_t i = 0; i + 1 < b.size(); ++i) {
    const Coordinate mid{(b[i].x + b[i + 1].x) / 2.0,
                         (b[i].y + b[i + 1].y) / 2.0};
    if (!PointOnLine(mid, a)) return false;
  }
  return true;
}

bool ContainsSimple(const SimplePart& a, const SimplePart& b) {
  switch (a.type) {
    case GeometryType::kPoint:
      return b.type == GeometryType::kPoint && PointsEqual(a.point, b.point);
    case GeometryType::kLineString:
      if (b.type == GeometryType::kPoint) return PointOnLine(b.point, *a.line);
      if (b.type == GeometryType::kLineString) {
        return LineContainsLine(*a.line, *b.line);
      }
      return false;  // a 1-D geometry cannot contain a 2-D one
    default:
      switch (b.type) {
        case GeometryType::kPoint:
          return PolygonCoversPoint(*a.poly, b.point);
        case GeometryType::kLineString:
          return PolygonCoversPath(*a.poly, *b.line);
        default:
          return PolygonContainsPolygon(*a.poly, *b.poly);
      }
  }
}

// ---------------------------------------------------------------------------
// Distance on simple parts
// ---------------------------------------------------------------------------

double DistancePointLine(const Coordinate& p,
                         const std::vector<Coordinate>& line) {
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i + 1 < line.size(); ++i) {
    best = std::min(best, DistancePointSegment(p, line[i], line[i + 1]));
  }
  return best;
}

double DistancePointPolyBoundary(const Coordinate& p, const PolygonData& poly) {
  double best = DistancePointLine(p, poly.shell);
  for (const auto& hole : poly.holes) {
    best = std::min(best, DistancePointLine(p, hole));
  }
  return best;
}

double DistanceLineLine(const std::vector<Coordinate>& l1,
                        const std::vector<Coordinate>& l2) {
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i + 1 < l1.size(); ++i) {
    for (size_t j = 0; j + 1 < l2.size(); ++j) {
      best = std::min(best, DistanceSegmentSegment(l1[i], l1[i + 1], l2[j],
                                                   l2[j + 1]));
      if (best == 0.0) return 0.0;
    }
  }
  return best;
}

double DistanceLinePolyBoundary(const std::vector<Coordinate>& line,
                                const PolygonData& poly) {
  double best = DistanceLineLine(line, poly.shell);
  for (const auto& hole : poly.holes) {
    best = std::min(best, DistanceLineLine(line, hole));
  }
  return best;
}

double DistanceSimple(const SimplePart& a, const SimplePart& b) {
  if (static_cast<int>(a.type) > static_cast<int>(b.type)) {
    return DistanceSimple(b, a);
  }
  if (IntersectsSimple(a, b)) return 0.0;
  switch (a.type) {
    case GeometryType::kPoint:
      switch (b.type) {
        case GeometryType::kPoint:
          return a.point.DistanceTo(b.point);
        case GeometryType::kLineString:
          return DistancePointLine(a.point, *b.line);
        default:
          return DistancePointPolyBoundary(a.point, *b.poly);
      }
    case GeometryType::kLineString:
      if (b.type == GeometryType::kLineString) {
        return DistanceLineLine(*a.line, *b.line);
      }
      return DistanceLinePolyBoundary(*a.line, *b.poly);
    default: {
      // Non-intersecting polygons: boundary-to-boundary distance.
      double best = DistanceLinePolyBoundary(a.poly->shell, *b.poly);
      for (const auto& hole : a.poly->holes) {
        best = std::min(best, DistanceLinePolyBoundary(hole, *b.poly));
      }
      return best;
    }
  }
}

}  // namespace

RingLocation LocateInPolygon(const Coordinate& p, const PolygonData& poly) {
  const RingLocation shell_loc = LocateInRing(p, poly.shell);
  if (shell_loc != RingLocation::kInside) return shell_loc;
  for (const auto& hole : poly.holes) {
    const RingLocation hole_loc = LocateInRing(p, hole);
    if (hole_loc == RingLocation::kBoundary) return RingLocation::kBoundary;
    if (hole_loc == RingLocation::kInside) return RingLocation::kOutside;
  }
  return RingLocation::kInside;
}

bool Intersects(const Geometry& a, const Geometry& b) {
  if (!a.envelope().Intersects(b.envelope())) return false;
  const auto parts_a = Decompose(a);
  const auto parts_b = Decompose(b);
  for (const auto& pa : parts_a) {
    for (const auto& pb : parts_b) {
      if (IntersectsSimple(pa, pb)) return true;
    }
  }
  return false;
}

bool Contains(const Geometry& a, const Geometry& b) {
  if (!a.envelope().Contains(b.envelope())) return false;
  const auto parts_a = Decompose(a);
  const auto parts_b = Decompose(b);
  for (const auto& pb : parts_b) {
    bool covered = false;
    for (const auto& pa : parts_a) {
      if (ContainsSimple(pa, pb)) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

double Distance(const Geometry& a, const Geometry& b) {
  const auto parts_a = Decompose(a);
  const auto parts_b = Decompose(b);
  double best = std::numeric_limits<double>::infinity();
  for (const auto& pa : parts_a) {
    for (const auto& pb : parts_b) {
      best = std::min(best, DistanceSimple(pa, pb));
      if (best == 0.0) return 0.0;
    }
  }
  return best;
}

}  // namespace stark
