#include "geometry/predicates.h"

#include <algorithm>
#include <limits>

#include "geometry/predicates_impl.h"

namespace stark {

using pred_internal::ContainsSimple;
using pred_internal::Decompose;
using pred_internal::DistanceSimple;
using pred_internal::IntersectsSimple;

RingLocation LocateInPolygon(const Coordinate& p, const PolygonData& poly) {
  const RingLocation shell_loc = LocateInRing(p, poly.shell);
  if (shell_loc != RingLocation::kInside) return shell_loc;
  for (const auto& hole : poly.holes) {
    const RingLocation hole_loc = LocateInRing(p, hole);
    if (hole_loc == RingLocation::kBoundary) return RingLocation::kBoundary;
    if (hole_loc == RingLocation::kInside) return RingLocation::kOutside;
  }
  return RingLocation::kInside;
}

bool Intersects(const Geometry& a, const Geometry& b) {
  if (!a.envelope().Intersects(b.envelope())) return false;
  const auto parts_a = Decompose(a);
  const auto parts_b = Decompose(b);
  for (const auto& pa : parts_a) {
    for (const auto& pb : parts_b) {
      if (IntersectsSimple(pa, pb)) return true;
    }
  }
  return false;
}

bool Contains(const Geometry& a, const Geometry& b) {
  if (!a.envelope().Contains(b.envelope())) return false;
  const auto parts_a = Decompose(a);
  const auto parts_b = Decompose(b);
  for (const auto& pb : parts_b) {
    bool covered = false;
    for (const auto& pa : parts_a) {
      if (ContainsSimple(pa, pb)) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

double Distance(const Geometry& a, const Geometry& b) {
  const auto parts_a = Decompose(a);
  const auto parts_b = Decompose(b);
  double best = std::numeric_limits<double>::infinity();
  for (const auto& pa : parts_a) {
    for (const auto& pb : parts_b) {
      best = std::min(best, DistanceSimple(pa, pb));
      if (best == 0.0) return 0.0;
    }
  }
  return best;
}

}  // namespace stark
