#include "geometry/geometry.h"

#include <cmath>

#include "geometry/wkt.h"

namespace stark {

const char* GeometryTypeName(GeometryType type) {
  switch (type) {
    case GeometryType::kPoint: return "POINT";
    case GeometryType::kMultiPoint: return "MULTIPOINT";
    case GeometryType::kLineString: return "LINESTRING";
    case GeometryType::kPolygon: return "POLYGON";
    case GeometryType::kMultiPolygon: return "MULTIPOLYGON";
  }
  return "UNKNOWN";
}

Geometry::Geometry(GeometryType type, std::vector<Coordinate> coords,
                   std::vector<PolygonData> polygons)
    : type_(type), coords_(std::move(coords)), polygons_(std::move(polygons)) {
  for (const auto& c : coords_) env_.ExpandToInclude(c);
  for (const auto& poly : polygons_) {
    for (const auto& c : poly.shell) env_.ExpandToInclude(c);
  }
}

Geometry Geometry::MakePoint(double x, double y) {
  return Geometry(GeometryType::kPoint, {{x, y}}, {});
}

Result<Geometry> Geometry::MakeMultiPoint(std::vector<Coordinate> coords) {
  if (coords.empty()) {
    return Status::InvalidArgument("MULTIPOINT requires at least one point");
  }
  return Geometry(GeometryType::kMultiPoint, std::move(coords), {});
}

Result<Geometry> Geometry::MakeLineString(std::vector<Coordinate> coords) {
  if (coords.size() < 2) {
    return Status::InvalidArgument("LINESTRING requires at least 2 points");
  }
  return Geometry(GeometryType::kLineString, std::move(coords), {});
}

Status Geometry::CloseAndValidateRing(Ring* ring) {
  if (ring->size() < 3) {
    return Status::InvalidArgument("polygon ring requires at least 3 points");
  }
  if (ring->front() != ring->back()) ring->push_back(ring->front());
  if (ring->size() < 4) {
    return Status::InvalidArgument("polygon ring degenerate after closing");
  }
  return Status::OK();
}

Result<Geometry> Geometry::MakePolygon(Ring shell, std::vector<Ring> holes) {
  STARK_RETURN_NOT_OK(CloseAndValidateRing(&shell));
  for (auto& hole : holes) {
    STARK_RETURN_NOT_OK(CloseAndValidateRing(&hole));
  }
  std::vector<PolygonData> polys;
  polys.push_back(PolygonData{std::move(shell), std::move(holes)});
  return Geometry(GeometryType::kPolygon, {}, std::move(polys));
}

Result<Geometry> Geometry::MakeMultiPolygon(std::vector<PolygonData> polygons) {
  if (polygons.empty()) {
    return Status::InvalidArgument("MULTIPOLYGON requires at least 1 polygon");
  }
  for (auto& poly : polygons) {
    STARK_RETURN_NOT_OK(CloseAndValidateRing(&poly.shell));
    for (auto& hole : poly.holes) {
      STARK_RETURN_NOT_OK(CloseAndValidateRing(&hole));
    }
  }
  return Geometry(GeometryType::kMultiPolygon, {}, std::move(polygons));
}

Geometry Geometry::MakeBox(const Envelope& env) {
  Ring shell{{env.min_x(), env.min_y()},
             {env.max_x(), env.min_y()},
             {env.max_x(), env.max_y()},
             {env.min_x(), env.max_y()},
             {env.min_x(), env.min_y()}};
  return MakePolygon(std::move(shell)).ValueOrDie();
}

Coordinate Geometry::Centroid() const {
  switch (type_) {
    case GeometryType::kPoint:
      return coords_[0];
    case GeometryType::kMultiPoint:
    case GeometryType::kLineString: {
      Coordinate mean{0.0, 0.0};
      for (const auto& c : coords_) {
        mean.x += c.x;
        mean.y += c.y;
      }
      mean.x /= static_cast<double>(coords_.size());
      mean.y /= static_cast<double>(coords_.size());
      return mean;
    }
    case GeometryType::kPolygon:
      return RingCentroid(polygons_[0].shell);
    case GeometryType::kMultiPolygon: {
      // Area-weighted combination of per-polygon centroids.
      double total_area = 0.0;
      Coordinate acc{0.0, 0.0};
      for (const auto& poly : polygons_) {
        const double area = std::abs(SignedRingArea(poly.shell));
        const Coordinate c = RingCentroid(poly.shell);
        acc.x += c.x * area;
        acc.y += c.y * area;
        total_area += area;
      }
      if (total_area <= 0.0) return RingCentroid(polygons_[0].shell);
      return {acc.x / total_area, acc.y / total_area};
    }
  }
  return {0.0, 0.0};
}

size_t Geometry::NumCoordinates() const {
  size_t n = coords_.size();
  for (const auto& poly : polygons_) {
    n += poly.shell.size();
    for (const auto& hole : poly.holes) n += hole.size();
  }
  return n;
}

bool Geometry::PolysEqual(const Geometry& o) const {
  if (polygons_.size() != o.polygons_.size()) return false;
  for (size_t i = 0; i < polygons_.size(); ++i) {
    if (polygons_[i].shell != o.polygons_[i].shell) return false;
    if (polygons_[i].holes != o.polygons_[i].holes) return false;
  }
  return true;
}

std::string Geometry::ToWkt() const { return WriteWkt(*this); }

}  // namespace stark
