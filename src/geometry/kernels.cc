#include "geometry/kernels.h"

#include <algorithm>
#include <cmath>

#include "geometry/prepared.h"
#include "temporal/interval.h"

namespace stark {

namespace {
constexpr double kEps = 1e-12;
}  // namespace

int Orientation(const Coordinate& a, const Coordinate& b,
                const Coordinate& c) {
  const double cross = (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
  // Scale the tolerance by the magnitude of the operands so that both tiny
  // and planet-scale coordinates classify near-collinear points as collinear.
  const double scale = std::max({std::abs(b.x - a.x), std::abs(b.y - a.y),
                                 std::abs(c.x - a.x), std::abs(c.y - a.y),
                                 1.0});
  if (std::abs(cross) <= kEps * scale * scale) return 0;
  return cross > 0 ? 1 : -1;
}

bool PointOnSegment(const Coordinate& p, const Coordinate& a,
                    const Coordinate& b) {
  if (Orientation(a, b, p) != 0) return false;
  return p.x >= std::min(a.x, b.x) - kEps && p.x <= std::max(a.x, b.x) + kEps &&
         p.y >= std::min(a.y, b.y) - kEps && p.y <= std::max(a.y, b.y) + kEps;
}

bool SegmentsIntersect(const Coordinate& p1, const Coordinate& p2,
                       const Coordinate& q1, const Coordinate& q2) {
  const int o1 = Orientation(p1, p2, q1);
  const int o2 = Orientation(p1, p2, q2);
  const int o3 = Orientation(q1, q2, p1);
  const int o4 = Orientation(q1, q2, p2);

  if (o1 != o2 && o3 != o4) return true;  // proper crossing

  // Collinear / endpoint-touch cases.
  if (o1 == 0 && PointOnSegment(q1, p1, p2)) return true;
  if (o2 == 0 && PointOnSegment(q2, p1, p2)) return true;
  if (o3 == 0 && PointOnSegment(p1, q1, q2)) return true;
  if (o4 == 0 && PointOnSegment(p2, q1, q2)) return true;
  return false;
}

RingLocation LocateInRing(const Coordinate& p, const Ring& ring) {
  if (ring.size() < 4) return RingLocation::kOutside;  // not a valid ring
  bool inside = false;
  for (size_t i = 0, n = ring.size() - 1; i < n; ++i) {
    const Coordinate& a = ring[i];
    const Coordinate& b = ring[i + 1];
    if (PointOnSegment(p, a, b)) return RingLocation::kBoundary;
    // Standard ray cast: count edges crossing the horizontal ray to +x.
    const bool crosses =
        ((a.y > p.y) != (b.y > p.y)) &&
        (p.x < (b.x - a.x) * (p.y - a.y) / (b.y - a.y) + a.x);
    if (crosses) inside = !inside;
  }
  return inside ? RingLocation::kInside : RingLocation::kOutside;
}

double DistancePointSegment(const Coordinate& p, const Coordinate& a,
                            const Coordinate& b) {
  const double dx = b.x - a.x;
  const double dy = b.y - a.y;
  const double len2 = dx * dx + dy * dy;
  if (len2 == 0.0) return p.DistanceTo(a);
  double t = ((p.x - a.x) * dx + (p.y - a.y) * dy) / len2;
  t = std::clamp(t, 0.0, 1.0);
  const Coordinate proj{a.x + t * dx, a.y + t * dy};
  return p.DistanceTo(proj);
}

double DistanceSegmentSegment(const Coordinate& p1, const Coordinate& p2,
                              const Coordinate& q1, const Coordinate& q2) {
  if (SegmentsIntersect(p1, p2, q1, q2)) return 0.0;
  return std::min({DistancePointSegment(p1, q1, q2),
                   DistancePointSegment(p2, q1, q2),
                   DistancePointSegment(q1, p1, p2),
                   DistancePointSegment(q2, p1, p2)});
}

double SignedRingArea(const Ring& ring) {
  double area = 0.0;
  for (size_t i = 0; i + 1 < ring.size(); ++i) {
    area += ring[i].x * ring[i + 1].y - ring[i + 1].x * ring[i].y;
  }
  return area / 2.0;
}

size_t FilterEnvelopesBatch(const EnvelopeSoA& envs, const Envelope& query,
                            std::vector<uint32_t>* out) {
  if (query.IsEmpty() || envs.empty()) return 0;
  const size_t base = out->size();
  out->resize(base + envs.size());
  const size_t n = FilterEnvelopesBatch(
      envs.min_x.data(), envs.min_y.data(), envs.max_x.data(),
      envs.max_y.data(), envs.size(), query.min_x(), query.min_y(),
      query.max_x(), query.max_y(), out->data() + base);
  out->resize(base + n);
  return n;
}

size_t RefineIntersectsBatch(const PreparedGeometry& prep, const double* px,
                             const double* py, const uint32_t* cand,
                             size_t count, uint32_t* out) {
  size_t n = 0;
  for (size_t i = 0; i < count; ++i) {
    const uint32_t j = cand[i];
    const bool hit = prep.IntersectsPoint({px[j], py[j]});
    out[n] = j;
    n += static_cast<size_t>(hit);
  }
  return n;
}

size_t RefineContainsBatch(const PreparedGeometry& prep, const double* px,
                           const double* py, const uint32_t* cand,
                           size_t count, uint32_t* out) {
  size_t n = 0;
  for (size_t i = 0; i < count; ++i) {
    const uint32_t j = cand[i];
    const bool hit = prep.ContainsPoint({px[j], py[j]});
    out[n] = j;
    n += static_cast<size_t>(hit);
  }
  return n;
}

size_t RefineContainedByBatch(const PreparedGeometry& prep, const double* px,
                              const double* py, const uint32_t* cand,
                              size_t count, uint32_t* out) {
  size_t n = 0;
  for (size_t i = 0; i < count; ++i) {
    const uint32_t j = cand[i];
    const bool hit = prep.ContainedByPoint({px[j], py[j]});
    out[n] = j;
    n += static_cast<size_t>(hit);
  }
  return n;
}

size_t RefineWithinDistanceBatch(const PreparedGeometry& prep,
                                 const double* px, const double* py,
                                 const uint32_t* cand, size_t count,
                                 double max_distance, uint32_t* out) {
  size_t n = 0;
  for (size_t i = 0; i < count; ++i) {
    const uint32_t j = cand[i];
    // <= mirrors JoinPredicate::Eval; a NaN distance (NaN inputs) compares
    // false, so poisoned rows drop out exactly like the scalar path.
    const bool hit = prep.DistanceFromPoint({px[j], py[j]}) <= max_distance;
    out[n] = j;
    n += static_cast<size_t>(hit);
  }
  return n;
}

size_t TemporalOverlapBatch(const int64_t* t_start, const int64_t* t_end,
                            const uint8_t* has_time, bool query_has_time,
                            int64_t query_start, int64_t query_end,
                            TemporalPredicate pred, bool query_is_left,
                            const uint32_t* cand, size_t count,
                            uint32_t* out) {
  const bool qt = query_has_time;
  size_t n = 0;
  // The predicate dispatch and operand orientation are loop-invariant, so
  // each case runs its own branch-free compaction loop. `ok` replicates
  // TemporalInterval::Intersects / Contains with non-short-circuit &.
  switch (pred) {
    case TemporalPredicate::kIntersects:
      for (size_t i = 0; i < count; ++i) {
        const uint32_t j = cand[i];
        const bool rt = has_time[j] != 0;
        const bool ok =
            (t_start[j] <= query_end) & (query_start <= t_end[j]);
        const bool hit = (!rt & !qt) | (rt & qt & ok);
        out[n] = j;
        n += static_cast<size_t>(hit);
      }
      break;
    case TemporalPredicate::kContains:
    case TemporalPredicate::kContainedBy: {
      // Normalize to "a contains b". kContainedBy flips the operands, and
      // query_is_left flips them again, so the row sits on the container
      // side iff exactly one flip applies.
      const bool row_contains =
          (pred == TemporalPredicate::kContains) != query_is_left;
      for (size_t i = 0; i < count; ++i) {
        const uint32_t j = cand[i];
        const bool rt = has_time[j] != 0;
        const bool ok =
            row_contains
                ? (t_start[j] <= query_start) & (query_end <= t_end[j])
                : (query_start <= t_start[j]) & (t_end[j] <= query_end);
        const bool hit = (!rt & !qt) | (rt & qt & ok);
        out[n] = j;
        n += static_cast<size_t>(hit);
      }
      break;
    }
  }
  return n;
}

Coordinate RingCentroid(const Ring& ring) {
  const double area = SignedRingArea(ring);
  if (std::abs(area) < 1e-30) {
    // Degenerate ring: fall back to the vertex mean (skip the closing point).
    Coordinate mean{0.0, 0.0};
    const size_t n = ring.size() > 1 ? ring.size() - 1 : ring.size();
    if (n == 0) return mean;
    for (size_t i = 0; i < n; ++i) {
      mean.x += ring[i].x;
      mean.y += ring[i].y;
    }
    mean.x /= static_cast<double>(n);
    mean.y /= static_cast<double>(n);
    return mean;
  }
  double cx = 0.0;
  double cy = 0.0;
  for (size_t i = 0; i + 1 < ring.size(); ++i) {
    const double f = ring[i].x * ring[i + 1].y - ring[i + 1].x * ring[i].y;
    cx += (ring[i].x + ring[i + 1].x) * f;
    cy += (ring[i].y + ring[i + 1].y) * f;
  }
  return {cx / (6.0 * area), cy / (6.0 * area)};
}

}  // namespace stark
