#include "geometry/wkt.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <string>

namespace stark {

namespace {

/// Recursive-descent scanner over a WKT string.
class WktScanner {
 public:
  explicit WktScanner(std::string_view text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  /// Reads an alphabetic keyword and upper-cases it.
  std::string ReadKeyword() {
    SkipSpace();
    std::string word;
    while (pos_ < text_.size() &&
           std::isalpha(static_cast<unsigned char>(text_[pos_]))) {
      word.push_back(static_cast<char>(
          std::toupper(static_cast<unsigned char>(text_[pos_]))));
      ++pos_;
    }
    return word;
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (!Consume(c)) {
      return Status::ParseError(std::string("WKT: expected '") + c +
                                "' at offset " + std::to_string(pos_));
    }
    return Status::OK();
  }

  Result<double> ReadNumber() {
    SkipSpace();
    double value = 0.0;
    const char* begin = text_.data() + pos_;
    const char* end = text_.data() + text_.size();
    auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc() || ptr == begin) {
      return Status::ParseError("WKT: expected number at offset " +
                                std::to_string(pos_));
    }
    pos_ += static_cast<size_t>(ptr - begin);
    return value;
  }

  Result<Coordinate> ReadCoordinate() {
    STARK_ASSIGN_OR_RETURN(double x, ReadNumber());
    STARK_ASSIGN_OR_RETURN(double y, ReadNumber());
    return Coordinate{x, y};
  }

  /// Reads "(x y, x y, ...)".
  Result<std::vector<Coordinate>> ReadCoordinateList() {
    STARK_RETURN_NOT_OK(Expect('('));
    std::vector<Coordinate> coords;
    do {
      STARK_ASSIGN_OR_RETURN(Coordinate c, ReadCoordinate());
      coords.push_back(c);
    } while (Consume(','));
    STARK_RETURN_NOT_OK(Expect(')'));
    return coords;
  }

  /// Reads "((ring), (ring), ...)" — a polygon body.
  Result<PolygonData> ReadPolygonBody() {
    STARK_RETURN_NOT_OK(Expect('('));
    PolygonData poly;
    STARK_ASSIGN_OR_RETURN(poly.shell, ReadCoordinateList());
    while (Consume(',')) {
      STARK_ASSIGN_OR_RETURN(Ring hole, ReadCoordinateList());
      poly.holes.push_back(std::move(hole));
    }
    STARK_RETURN_NOT_OK(Expect(')'));
    return poly;
  }

  size_t pos() const { return pos_; }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

void AppendNumber(std::string* out, double v) {
  char buf[32];
  // Integral values print without an exponent ("100000", not "1e+05").
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    out->append(buf);
    return;
  }
  // %.17g round-trips doubles; trim to a compact representation.
  int n = std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Prefer the shortest representation that round-trips.
  for (int prec = 1; prec < 17; ++prec) {
    char probe[32];
    std::snprintf(probe, sizeof(probe), "%.*g", prec, v);
    double back = 0.0;
    std::sscanf(probe, "%lf", &back);
    if (back == v) {
      out->append(probe);
      return;
    }
  }
  out->append(buf, static_cast<size_t>(n));
}

void AppendCoordinate(std::string* out, const Coordinate& c) {
  AppendNumber(out, c.x);
  out->push_back(' ');
  AppendNumber(out, c.y);
}

void AppendCoordinateList(std::string* out,
                          const std::vector<Coordinate>& coords) {
  out->push_back('(');
  for (size_t i = 0; i < coords.size(); ++i) {
    if (i > 0) out->append(", ");
    AppendCoordinate(out, coords[i]);
  }
  out->push_back(')');
}

void AppendPolygonBody(std::string* out, const PolygonData& poly) {
  out->push_back('(');
  AppendCoordinateList(out, poly.shell);
  for (const auto& hole : poly.holes) {
    out->append(", ");
    AppendCoordinateList(out, hole);
  }
  out->push_back(')');
}

}  // namespace

Result<Geometry> ParseWkt(std::string_view text) {
  WktScanner scan(text);
  const std::string keyword = scan.ReadKeyword();
  if (keyword.empty()) {
    return Status::ParseError("WKT: missing geometry keyword");
  }

  Result<Geometry> result = [&]() -> Result<Geometry> {
    if (keyword == "POINT") {
      STARK_RETURN_NOT_OK(scan.Expect('('));
      STARK_ASSIGN_OR_RETURN(Coordinate c, scan.ReadCoordinate());
      STARK_RETURN_NOT_OK(scan.Expect(')'));
      return Geometry::MakePoint(c);
    }
    if (keyword == "MULTIPOINT") {
      // Accept both "MULTIPOINT (1 2, 3 4)" and "MULTIPOINT ((1 2), (3 4))".
      STARK_RETURN_NOT_OK(scan.Expect('('));
      std::vector<Coordinate> coords;
      do {
        if (scan.Consume('(')) {
          STARK_ASSIGN_OR_RETURN(Coordinate c, scan.ReadCoordinate());
          STARK_RETURN_NOT_OK(scan.Expect(')'));
          coords.push_back(c);
        } else {
          STARK_ASSIGN_OR_RETURN(Coordinate c, scan.ReadCoordinate());
          coords.push_back(c);
        }
      } while (scan.Consume(','));
      STARK_RETURN_NOT_OK(scan.Expect(')'));
      return Geometry::MakeMultiPoint(std::move(coords));
    }
    if (keyword == "LINESTRING") {
      STARK_ASSIGN_OR_RETURN(std::vector<Coordinate> coords,
                             scan.ReadCoordinateList());
      return Geometry::MakeLineString(std::move(coords));
    }
    if (keyword == "POLYGON") {
      STARK_ASSIGN_OR_RETURN(PolygonData poly, scan.ReadPolygonBody());
      return Geometry::MakePolygon(std::move(poly.shell),
                                   std::move(poly.holes));
    }
    if (keyword == "MULTIPOLYGON") {
      STARK_RETURN_NOT_OK(scan.Expect('('));
      std::vector<PolygonData> polys;
      do {
        STARK_ASSIGN_OR_RETURN(PolygonData poly, scan.ReadPolygonBody());
        polys.push_back(std::move(poly));
      } while (scan.Consume(','));
      STARK_RETURN_NOT_OK(scan.Expect(')'));
      return Geometry::MakeMultiPolygon(std::move(polys));
    }
    return Status::ParseError("WKT: unsupported geometry type: " + keyword);
  }();

  if (!result.ok()) return result;
  if (!scan.AtEnd()) {
    return Status::ParseError("WKT: trailing characters at offset " +
                              std::to_string(scan.pos()));
  }
  return result;
}

bool ParsePointWkt(std::string_view text, double* x, double* y) {
  WktScanner scan(text);
  if (scan.ReadKeyword() != "POINT") return false;
  if (!scan.Consume('(')) return false;
  Result<Coordinate> c = scan.ReadCoordinate();
  if (!c.ok()) return false;
  if (!scan.Consume(')')) return false;
  if (!scan.AtEnd()) return false;  // same trailing-bytes rule as ParseWkt
  *x = c.ValueOrDie().x;
  *y = c.ValueOrDie().y;
  return true;
}

std::string WriteWkt(const Geometry& geometry) {
  std::string out = GeometryTypeName(geometry.type());
  out.push_back(' ');
  switch (geometry.type()) {
    case GeometryType::kPoint: {
      out.push_back('(');
      AppendCoordinate(&out, geometry.AsPoint());
      out.push_back(')');
      break;
    }
    case GeometryType::kMultiPoint:
    case GeometryType::kLineString:
      AppendCoordinateList(&out, geometry.coordinates());
      break;
    case GeometryType::kPolygon:
      AppendPolygonBody(&out, geometry.polygons()[0]);
      break;
    case GeometryType::kMultiPolygon: {
      out.push_back('(');
      const auto& polys = geometry.polygons();
      for (size_t i = 0; i < polys.size(); ++i) {
        if (i > 0) out.append(", ");
        AppendPolygonBody(&out, polys[i]);
      }
      out.push_back(')');
      break;
    }
  }
  return out;
}

}  // namespace stark
