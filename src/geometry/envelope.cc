#include "geometry/envelope.h"

#include <cstdio>

namespace stark {

std::string Envelope::ToString() const {
  if (IsEmpty()) return "Env[empty]";
  char buf[128];
  std::snprintf(buf, sizeof(buf), "Env[%g..%g, %g..%g]", min_x_, max_x_,
                min_y_, max_y_);
  return buf;
}

}  // namespace stark
