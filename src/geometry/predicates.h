/// \file predicates.h
/// Spatial predicates over Geometry values: intersects, contains, distance.
/// These are the spatial halves of STARK's spatio-temporal predicates; the
/// combined semantics (formula (1)-(3) of the paper) live in core/.
#ifndef STARK_GEOMETRY_PREDICATES_H_
#define STARK_GEOMETRY_PREDICATES_H_

#include "geometry/geometry.h"

namespace stark {

/// True iff \p a and \p b share at least one point (boundaries count).
/// Symmetric.
bool Intersects(const Geometry& a, const Geometry& b);

/// True iff \p a completely contains \p b. Boundary points count as
/// contained (JTS "covers" semantics, which is what spatial filters want:
/// an event on the query polygon's border is reported).
///
/// For a MultiPolygon / MultiPoint container the test is per-part: every
/// part of \p b must be contained by some single part of \p a. Containment
/// that only holds for the union of multiple parts is not detected; STARK's
/// workloads (event points vs. query regions) never need it.
bool Contains(const Geometry& a, const Geometry& b);

/// Reverse of Contains: true iff \p b completely contains \p a.
inline bool ContainedBy(const Geometry& a, const Geometry& b) {
  return Contains(b, a);
}

/// Minimum Euclidean distance between \p a and \p b; 0 when they intersect.
double Distance(const Geometry& a, const Geometry& b);

/// Point-in-polygon classification against shell and holes.
RingLocation LocateInPolygon(const Coordinate& p, const PolygonData& poly);

}  // namespace stark

#endif  // STARK_GEOMETRY_PREDICATES_H_
