/// \file envelope.h
/// Axis-aligned minimum bounding rectangle. Envelopes drive both the R-tree
/// candidate search and the partition bounds / extent pruning of §2.1.
#ifndef STARK_GEOMETRY_ENVELOPE_H_
#define STARK_GEOMETRY_ENVELOPE_H_

#include <algorithm>
#include <limits>
#include <string>

#include "geometry/coordinate.h"

namespace stark {

/// \brief An axis-aligned bounding box; default-constructed empty ("null
/// envelope" in JTS terms) and grown with ExpandToInclude.
class Envelope {
 public:
  /// Creates an empty envelope that contains nothing.
  Envelope() = default;

  Envelope(double min_x, double min_y, double max_x, double max_y)
      : min_x_(min_x), min_y_(min_y), max_x_(max_x), max_y_(max_y) {}

  /// Envelope of a single coordinate.
  explicit Envelope(const Coordinate& c) : Envelope(c.x, c.y, c.x, c.y) {}

  /// True iff no coordinate has been included yet.
  bool IsEmpty() const { return min_x_ > max_x_; }

  double min_x() const { return min_x_; }
  double min_y() const { return min_y_; }
  double max_x() const { return max_x_; }
  double max_y() const { return max_y_; }

  double Width() const { return IsEmpty() ? 0.0 : max_x_ - min_x_; }
  double Height() const { return IsEmpty() ? 0.0 : max_y_ - min_y_; }
  double Area() const { return Width() * Height(); }

  /// Center point; (0,0) for an empty envelope.
  Coordinate Center() const {
    if (IsEmpty()) return {0.0, 0.0};
    return {(min_x_ + max_x_) / 2.0, (min_y_ + max_y_) / 2.0};
  }

  /// Grows this envelope to cover \p c.
  void ExpandToInclude(const Coordinate& c) {
    min_x_ = std::min(min_x_, c.x);
    min_y_ = std::min(min_y_, c.y);
    max_x_ = std::max(max_x_, c.x);
    max_y_ = std::max(max_y_, c.y);
  }

  /// Grows this envelope to cover \p other.
  void ExpandToInclude(const Envelope& other) {
    if (other.IsEmpty()) return;
    min_x_ = std::min(min_x_, other.min_x_);
    min_y_ = std::min(min_y_, other.min_y_);
    max_x_ = std::max(max_x_, other.max_x_);
    max_y_ = std::max(max_y_, other.max_y_);
  }

  /// Grows the envelope outward by \p margin on every side.
  Envelope Expanded(double margin) const {
    if (IsEmpty()) return *this;
    return Envelope(min_x_ - margin, min_y_ - margin, max_x_ + margin,
                    max_y_ + margin);
  }

  /// True iff the rectangles share at least one point (boundaries count).
  bool Intersects(const Envelope& o) const {
    if (IsEmpty() || o.IsEmpty()) return false;
    return !(o.min_x_ > max_x_ || o.max_x_ < min_x_ || o.min_y_ > max_y_ ||
             o.max_y_ < min_y_);
  }

  /// True iff \p c lies inside or on the boundary.
  bool Contains(const Coordinate& c) const {
    if (IsEmpty()) return false;
    return c.x >= min_x_ && c.x <= max_x_ && c.y >= min_y_ && c.y <= max_y_;
  }

  /// True iff \p o lies entirely inside or on the boundary.
  bool Contains(const Envelope& o) const {
    if (IsEmpty() || o.IsEmpty()) return false;
    return o.min_x_ >= min_x_ && o.max_x_ <= max_x_ && o.min_y_ >= min_y_ &&
           o.max_y_ <= max_y_;
  }

  /// Minimum distance between the two rectangles; 0 if they intersect.
  double Distance(const Envelope& o) const {
    if (Intersects(o)) return 0.0;
    double dx = 0.0;
    if (o.max_x_ < min_x_) {
      dx = min_x_ - o.max_x_;
    } else if (o.min_x_ > max_x_) {
      dx = o.min_x_ - max_x_;
    }
    double dy = 0.0;
    if (o.max_y_ < min_y_) {
      dy = min_y_ - o.max_y_;
    } else if (o.min_y_ > max_y_) {
      dy = o.min_y_ - max_y_;
    }
    return std::sqrt(dx * dx + dy * dy);
  }

  /// Minimum distance from the rectangle to a coordinate; 0 if contained.
  double Distance(const Coordinate& c) const {
    if (Contains(c)) return 0.0;
    const double dx = std::max({min_x_ - c.x, 0.0, c.x - max_x_});
    const double dy = std::max({min_y_ - c.y, 0.0, c.y - max_y_});
    return std::sqrt(dx * dx + dy * dy);
  }

  /// Intersection rectangle; empty when disjoint.
  Envelope Intersection(const Envelope& o) const {
    if (!Intersects(o)) return Envelope();
    return Envelope(std::max(min_x_, o.min_x_), std::max(min_y_, o.min_y_),
                    std::min(max_x_, o.max_x_), std::min(max_y_, o.max_y_));
  }

  bool operator==(const Envelope& o) const {
    if (IsEmpty() && o.IsEmpty()) return true;
    return min_x_ == o.min_x_ && min_y_ == o.min_y_ && max_x_ == o.max_x_ &&
           max_y_ == o.max_y_;
  }

  std::string ToString() const;

 private:
  double min_x_ = std::numeric_limits<double>::infinity();
  double min_y_ = std::numeric_limits<double>::infinity();
  double max_x_ = -std::numeric_limits<double>::infinity();
  double max_y_ = -std::numeric_limits<double>::infinity();
};

}  // namespace stark

#endif  // STARK_GEOMETRY_ENVELOPE_H_
