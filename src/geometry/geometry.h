/// \file geometry.h
/// The geometry model: Point, MultiPoint, LineString, Polygon (with holes)
/// and MultiPolygon, mirroring the subset of JTS that STARK uses.
#ifndef STARK_GEOMETRY_GEOMETRY_H_
#define STARK_GEOMETRY_GEOMETRY_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "geometry/coordinate.h"
#include "geometry/envelope.h"
#include "geometry/kernels.h"

namespace stark {

/// Tag identifying the concrete shape stored in a Geometry.
enum class GeometryType {
  kPoint,
  kMultiPoint,
  kLineString,
  kPolygon,
  kMultiPolygon,
};

/// Returns the WKT keyword for \p type ("POINT", "POLYGON", ...).
const char* GeometryTypeName(GeometryType type);

/// Shell ring plus optional hole rings; all rings are stored closed
/// (first coordinate == last coordinate).
struct PolygonData {
  Ring shell;
  std::vector<Ring> holes;
};

/// \brief Immutable 2-D geometry value.
///
/// Construct through the factory functions; invalid inputs (e.g. a polygon
/// ring with fewer than 3 distinct points) are reported as Status errors.
/// The envelope is computed eagerly so bounding-box tests are free.
class Geometry {
 public:
  /// A single point.
  static Geometry MakePoint(double x, double y);
  static Geometry MakePoint(const Coordinate& c) { return MakePoint(c.x, c.y); }

  /// A collection of points; must be non-empty.
  static Result<Geometry> MakeMultiPoint(std::vector<Coordinate> coords);

  /// A polyline; must have at least 2 coordinates.
  static Result<Geometry> MakeLineString(std::vector<Coordinate> coords);

  /// A polygon from a shell and optional holes. Rings are closed
  /// automatically if the caller did not repeat the first coordinate.
  static Result<Geometry> MakePolygon(Ring shell, std::vector<Ring> holes = {});

  /// A collection of polygons; must be non-empty.
  static Result<Geometry> MakeMultiPolygon(std::vector<PolygonData> polygons);

  /// Convenience: the axis-aligned rectangle [min_x,max_x]x[min_y,max_y]
  /// as a polygon.
  static Geometry MakeBox(const Envelope& env);

  GeometryType type() const { return type_; }
  bool IsPoint() const { return type_ == GeometryType::kPoint; }

  /// Coordinates for point / multipoint / linestring geometries.
  const std::vector<Coordinate>& coordinates() const { return coords_; }

  /// Polygon parts for polygon / multipolygon geometries.
  const std::vector<PolygonData>& polygons() const { return polygons_; }

  /// The single coordinate of a point geometry.
  const Coordinate& AsPoint() const {
    STARK_DCHECK(type_ == GeometryType::kPoint);
    return coords_[0];
  }

  /// Cached minimum bounding rectangle.
  const Envelope& envelope() const { return env_; }

  /// Area-weighted centroid (vertex mean for point/line types). This is the
  /// point STARK uses to assign a geometry to exactly one partition (§2.1).
  Coordinate Centroid() const;

  /// Total number of vertices across all parts.
  size_t NumCoordinates() const;

  /// WKT representation, e.g. "POINT (1 2)".
  std::string ToWkt() const;

  bool operator==(const Geometry& o) const {
    return type_ == o.type_ && coords_ == o.coords_ && PolysEqual(o);
  }

 private:
  Geometry(GeometryType type, std::vector<Coordinate> coords,
           std::vector<PolygonData> polygons);

  bool PolysEqual(const Geometry& o) const;
  static Status CloseAndValidateRing(Ring* ring);

  GeometryType type_ = GeometryType::kPoint;
  std::vector<Coordinate> coords_;     // point / multipoint / linestring
  std::vector<PolygonData> polygons_;  // polygon / multipolygon
  Envelope env_;
};

}  // namespace stark

#endif  // STARK_GEOMETRY_GEOMETRY_H_
