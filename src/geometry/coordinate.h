/// \file coordinate.h
/// Planar coordinate type shared by all geometry classes.
#ifndef STARK_GEOMETRY_COORDINATE_H_
#define STARK_GEOMETRY_COORDINATE_H_

#include <cmath>

namespace stark {

/// A 2-D coordinate. STARK (like JTS) operates on planar coordinates; for
/// geographic data, longitude maps to x and latitude to y.
struct Coordinate {
  double x = 0.0;
  double y = 0.0;

  bool operator==(const Coordinate& o) const { return x == o.x && y == o.y; }
  bool operator!=(const Coordinate& o) const { return !(*this == o); }

  /// Euclidean distance to \p o.
  double DistanceTo(const Coordinate& o) const {
    const double dx = x - o.x;
    const double dy = y - o.y;
    return std::sqrt(dx * dx + dy * dy);
  }

  /// Squared Euclidean distance to \p o (avoids the sqrt in hot loops).
  double SquaredDistanceTo(const Coordinate& o) const {
    const double dx = x - o.x;
    const double dy = y - o.y;
    return dx * dx + dy * dy;
  }
};

}  // namespace stark

#endif  // STARK_GEOMETRY_COORDINATE_H_
