/// \file wkt.h
/// Well-Known Text reader and writer. STARK programs construct STObjects
/// from WKT strings (the paper's event schema carries a `wkt` column).
#ifndef STARK_GEOMETRY_WKT_H_
#define STARK_GEOMETRY_WKT_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "geometry/geometry.h"

namespace stark {

/// Parses one WKT geometry. Supported: POINT, MULTIPOINT (both nesting
/// styles), LINESTRING, POLYGON, MULTIPOLYGON, and EMPTY variants are
/// rejected with ParseError (STARK has no empty-geometry semantics).
Result<Geometry> ParseWkt(std::string_view text);

/// Fast-path scanner for the dominant `POINT (x y)` case of the event
/// schema: on success stores the coordinate and returns true; any other
/// input (other types, malformed text, trailing bytes) returns false so the
/// caller falls back to ParseWkt. Uses the same number parsing as ParseWkt,
/// so an accepted coordinate is bit-identical to the full parser's result.
bool ParsePointWkt(std::string_view text, double* x, double* y);

/// Serializes \p geometry to canonical WKT.
std::string WriteWkt(const Geometry& geometry);

}  // namespace stark

#endif  // STARK_GEOMETRY_WKT_H_
