#include "geometry/wkb.h"

#include <bit>
#include <cstring>

namespace stark {

namespace {

// OGC geometry type codes.
constexpr uint32_t kWkbPoint = 1;
constexpr uint32_t kWkbLineString = 2;
constexpr uint32_t kWkbPolygon = 3;
constexpr uint32_t kWkbMultiPoint = 4;
constexpr uint32_t kWkbMultiPolygon = 6;

constexpr uint8_t kBigEndian = 0;
constexpr uint8_t kLittleEndian = 1;

/// This host's WKB byte-order tag.
constexpr uint8_t HostOrder() {
  return std::endian::native == std::endian::little ? kLittleEndian
                                                    : kBigEndian;
}

uint32_t ByteSwap32(uint32_t v) {
  return ((v & 0x000000FFu) << 24) | ((v & 0x0000FF00u) << 8) |
         ((v & 0x00FF0000u) >> 8) | ((v & 0xFF000000u) >> 24);
}

uint64_t ByteSwap64(uint64_t v) {
  v = ((v & 0x00000000FFFFFFFFull) << 32) | (v >> 32);
  v = ((v & 0x0000FFFF0000FFFFull) << 16) | ((v >> 16) & 0x0000FFFF0000FFFFull);
  v = ((v & 0x00FF00FF00FF00FFull) << 8) | ((v >> 8) & 0x00FF00FF00FF00FFull);
  return v;
}

// -- Writer -----------------------------------------------------------------

class WkbWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }

  void U32(uint32_t v) {
    char raw[4];
    std::memcpy(raw, &v, 4);
    buf_.insert(buf_.end(), raw, raw + 4);
  }

  void F64(double v) {
    char raw[8];
    std::memcpy(raw, &v, 8);
    buf_.insert(buf_.end(), raw, raw + 8);
  }

  void Coord(const Coordinate& c) {
    F64(c.x);
    F64(c.y);
  }

  void CoordSeq(const std::vector<Coordinate>& coords) {
    U32(static_cast<uint32_t>(coords.size()));
    for (const auto& c : coords) Coord(c);
  }

  void Header(uint32_t type) {
    U8(HostOrder());
    U32(type);
  }

  void PolygonBody(const PolygonData& poly) {
    U32(static_cast<uint32_t>(1 + poly.holes.size()));
    CoordSeq(poly.shell);
    for (const auto& hole : poly.holes) CoordSeq(hole);
  }

  std::vector<char> Take() { return std::move(buf_); }

 private:
  std::vector<char> buf_;
};

// -- Reader -----------------------------------------------------------------

class WkbReader {
 public:
  WkbReader(const char* data, size_t size) : data_(data), size_(size) {}

  Result<uint8_t> U8() {
    if (pos_ + 1 > size_) return Truncated();
    return static_cast<uint8_t>(data_[pos_++]);
  }

  Result<uint32_t> U32() {
    if (pos_ + 4 > size_) return Truncated();
    uint32_t v;
    std::memcpy(&v, data_ + pos_, 4);
    pos_ += 4;
    return swap_ ? ByteSwap32(v) : v;
  }

  Result<double> F64() {
    if (pos_ + 8 > size_) return Truncated();
    uint64_t bits;
    std::memcpy(&bits, data_ + pos_, 8);
    pos_ += 8;
    if (swap_) bits = ByteSwap64(bits);
    double v;
    std::memcpy(&v, &bits, 8);
    return v;
  }

  Result<Coordinate> Coord() {
    STARK_ASSIGN_OR_RETURN(double x, F64());
    STARK_ASSIGN_OR_RETURN(double y, F64());
    return Coordinate{x, y};
  }

  Result<std::vector<Coordinate>> CoordSeq() {
    STARK_ASSIGN_OR_RETURN(uint32_t n, U32());
    if (static_cast<size_t>(n) * 16 > size_ - pos_) return Truncated();
    std::vector<Coordinate> coords;
    coords.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      STARK_ASSIGN_OR_RETURN(Coordinate c, Coord());
      coords.push_back(c);
    }
    return coords;
  }

  /// Reads the 1-byte order marker + type code of a (nested) geometry.
  Result<uint32_t> Header() {
    STARK_ASSIGN_OR_RETURN(uint8_t order, U8());
    if (order != kLittleEndian && order != kBigEndian) {
      return Status::ParseError("WKB: bad byte-order marker");
    }
    swap_ = order != HostOrder();
    return U32();
  }

  Result<PolygonData> PolygonBody() {
    STARK_ASSIGN_OR_RETURN(uint32_t rings, U32());
    if (rings == 0) return Status::ParseError("WKB: polygon with 0 rings");
    PolygonData poly;
    STARK_ASSIGN_OR_RETURN(poly.shell, CoordSeq());
    for (uint32_t r = 1; r < rings; ++r) {
      STARK_ASSIGN_OR_RETURN(Ring hole, CoordSeq());
      poly.holes.push_back(std::move(hole));
    }
    return poly;
  }

  bool AtEnd() const { return pos_ == size_; }

 private:
  Status Truncated() const {
    return Status::ParseError("WKB: truncated buffer");
  }

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
  bool swap_ = false;
};

Result<Geometry> ReadGeometryBody(WkbReader* reader) {
  STARK_ASSIGN_OR_RETURN(uint32_t type, reader->Header());
  switch (type) {
    case kWkbPoint: {
      STARK_ASSIGN_OR_RETURN(Coordinate c, reader->Coord());
      return Geometry::MakePoint(c);
    }
    case kWkbLineString: {
      STARK_ASSIGN_OR_RETURN(auto coords, reader->CoordSeq());
      return Geometry::MakeLineString(std::move(coords));
    }
    case kWkbPolygon: {
      STARK_ASSIGN_OR_RETURN(PolygonData poly, reader->PolygonBody());
      return Geometry::MakePolygon(std::move(poly.shell),
                                   std::move(poly.holes));
    }
    case kWkbMultiPoint: {
      STARK_ASSIGN_OR_RETURN(uint32_t n, reader->U32());
      std::vector<Coordinate> coords;
      coords.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        // Each member is a full WKB point geometry.
        STARK_ASSIGN_OR_RETURN(uint32_t member_type, reader->Header());
        if (member_type != kWkbPoint) {
          return Status::ParseError("WKB: MULTIPOINT member is not a point");
        }
        STARK_ASSIGN_OR_RETURN(Coordinate c, reader->Coord());
        coords.push_back(c);
      }
      return Geometry::MakeMultiPoint(std::move(coords));
    }
    case kWkbMultiPolygon: {
      STARK_ASSIGN_OR_RETURN(uint32_t n, reader->U32());
      std::vector<PolygonData> polys;
      polys.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        STARK_ASSIGN_OR_RETURN(uint32_t member_type, reader->Header());
        if (member_type != kWkbPolygon) {
          return Status::ParseError(
              "WKB: MULTIPOLYGON member is not a polygon");
        }
        STARK_ASSIGN_OR_RETURN(PolygonData poly, reader->PolygonBody());
        polys.push_back(std::move(poly));
      }
      return Geometry::MakeMultiPolygon(std::move(polys));
    }
    default:
      return Status::ParseError("WKB: unsupported geometry type code " +
                                std::to_string(type));
  }
}

}  // namespace

std::vector<char> WriteWkb(const Geometry& geometry) {
  WkbWriter writer;
  switch (geometry.type()) {
    case GeometryType::kPoint:
      writer.Header(kWkbPoint);
      writer.Coord(geometry.AsPoint());
      break;
    case GeometryType::kLineString:
      writer.Header(kWkbLineString);
      writer.CoordSeq(geometry.coordinates());
      break;
    case GeometryType::kPolygon:
      writer.Header(kWkbPolygon);
      writer.PolygonBody(geometry.polygons()[0]);
      break;
    case GeometryType::kMultiPoint: {
      writer.Header(kWkbMultiPoint);
      const auto& coords = geometry.coordinates();
      writer.U32(static_cast<uint32_t>(coords.size()));
      for (const auto& c : coords) {
        writer.Header(kWkbPoint);
        writer.Coord(c);
      }
      break;
    }
    case GeometryType::kMultiPolygon: {
      writer.Header(kWkbMultiPolygon);
      const auto& polys = geometry.polygons();
      writer.U32(static_cast<uint32_t>(polys.size()));
      for (const auto& poly : polys) {
        writer.Header(kWkbPolygon);
        writer.PolygonBody(poly);
      }
      break;
    }
  }
  return writer.Take();
}

Result<Geometry> ParseWkb(const char* data, size_t size) {
  WkbReader reader(data, size);
  STARK_ASSIGN_OR_RETURN(Geometry geo, ReadGeometryBody(&reader));
  if (!reader.AtEnd()) {
    return Status::ParseError("WKB: trailing bytes after geometry");
  }
  return geo;
}

std::string WriteWkbHex(const Geometry& geometry) {
  static const char* kHex = "0123456789ABCDEF";
  const std::vector<char> wkb = WriteWkb(geometry);
  std::string hex;
  hex.reserve(wkb.size() * 2);
  for (char byte : wkb) {
    const auto b = static_cast<unsigned char>(byte);
    hex.push_back(kHex[b >> 4]);
    hex.push_back(kHex[b & 0xF]);
  }
  return hex;
}

Result<Geometry> ParseWkbHex(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    return Status::ParseError("WKB hex: odd-length string");
  }
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  std::vector<char> bytes;
  bytes.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nibble(hex[i]);
    const int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return Status::ParseError("WKB hex: invalid character");
    }
    bytes.push_back(static_cast<char>((hi << 4) | lo));
  }
  return ParseWkb(bytes);
}

}  // namespace stark
