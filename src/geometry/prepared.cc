#include "geometry/prepared.h"

#include <algorithm>
#include <limits>
#include <utility>
#include <vector>

#include "geometry/predicates_impl.h"

namespace stark {

namespace {

using pred_internal::SimplePart;

/// Ring edges as structure-of-arrays: edge i runs (ax[i],ay[i]) ->
/// (bx[i],by[i]). Built only for valid rings (>= 4 closed coordinates),
/// so size() < 3 marks the degenerate rings LocateInRing rejects.
struct RingEdges {
  std::vector<double> ax, ay, bx, by;
  size_t size() const { return ax.size(); }
};

struct PolyEdges {
  RingEdges shell;
  std::vector<RingEdges> holes;
};

RingEdges BuildRingEdges(const Ring& ring) {
  RingEdges e;
  if (ring.size() < 4) return e;  // LocateInRing treats these as empty
  const size_t n = ring.size() - 1;
  e.ax.reserve(n);
  e.ay.reserve(n);
  e.bx.reserve(n);
  e.by.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    e.ax.push_back(ring[i].x);
    e.ay.push_back(ring[i].y);
    e.bx.push_back(ring[i + 1].x);
    e.by.push_back(ring[i + 1].y);
  }
  return e;
}

/// Exact replica of LocateInRing over cached SoA edges: same boundary test,
/// same ray-cast formula, same edge order, so results (and every
/// intermediate double) are identical.
RingLocation LocateInRingEdges(const Coordinate& p, const RingEdges& e) {
  if (e.size() < 3) return RingLocation::kOutside;
  bool inside = false;
  for (size_t i = 0, n = e.size(); i < n; ++i) {
    const Coordinate a{e.ax[i], e.ay[i]};
    const Coordinate b{e.bx[i], e.by[i]};
    if (PointOnSegment(p, a, b)) return RingLocation::kBoundary;
    const bool crosses =
        ((a.y > p.y) != (b.y > p.y)) &&
        (p.x < (b.x - a.x) * (p.y - a.y) / (b.y - a.y) + a.x);
    if (crosses) inside = !inside;
  }
  return inside ? RingLocation::kInside : RingLocation::kOutside;
}

/// Exact replica of LocateInPolygon over cached edges.
RingLocation LocateInPreparedPolygon(const Coordinate& p,
                                     const PolyEdges& pe) {
  const RingLocation shell_loc = LocateInRingEdges(p, pe.shell);
  if (shell_loc != RingLocation::kInside) return shell_loc;
  for (const auto& hole : pe.holes) {
    const RingLocation hole_loc = LocateInRingEdges(p, hole);
    if (hole_loc == RingLocation::kBoundary) return RingLocation::kBoundary;
    if (hole_loc == RingLocation::kInside) return RingLocation::kOutside;
  }
  return RingLocation::kInside;
}

/// Applies \p fn to each simple part of \p g in Decompose order without
/// heap-allocating a parts vector; stops early when fn returns true.
template <typename Fn>
bool AnyPart(const Geometry& g, Fn fn) {
  switch (g.type()) {
    case GeometryType::kPoint:
      return fn(
          SimplePart{GeometryType::kPoint, g.AsPoint(), nullptr, nullptr});
    case GeometryType::kMultiPoint:
      for (const auto& c : g.coordinates()) {
        if (fn(SimplePart{GeometryType::kPoint, c, nullptr, nullptr})) {
          return true;
        }
      }
      return false;
    case GeometryType::kLineString:
      return fn(SimplePart{GeometryType::kLineString, {}, &g.coordinates(),
                           nullptr});
    case GeometryType::kPolygon:
    case GeometryType::kMultiPolygon:
      for (const auto& poly : g.polygons()) {
        if (fn(SimplePart{GeometryType::kPolygon, {}, nullptr, &poly})) {
          return true;
        }
      }
      return false;
  }
  return false;
}

}  // namespace

struct PreparedGeometry::Impl {
  const Geometry* geo;
  std::vector<SimplePart> parts;       // cached decomposition
  std::vector<PolyEdges> poly_edges;   // parallel to parts (polygon types)
  Coordinate interior{0.0, 0.0};

  /// Cached edges for part \p k, or nullptr when it is not a polygon.
  const PolyEdges* EdgesFor(size_t k) const {
    return k < poly_edges.size() ? &poly_edges[k] : nullptr;
  }

  /// IntersectsSimple(pa, parts[k]) with the point-in-polygon case served
  /// from cached edges (identical arithmetic).
  bool IntersectsPart(const SimplePart& pa, size_t k) const {
    const PolyEdges* pe = EdgesFor(k);
    if (pe != nullptr && pa.type == GeometryType::kPoint) {
      return LocateInPreparedPolygon(pa.point, *pe) != RingLocation::kOutside;
    }
    return pred_internal::IntersectsSimple(pa, parts[k]);
  }

  /// ContainsSimple(parts[k], pb) with the polygon-covers-point case served
  /// from cached edges.
  bool PartContains(size_t k, const SimplePart& pb) const {
    const PolyEdges* pe = EdgesFor(k);
    if (pe != nullptr && pb.type == GeometryType::kPoint) {
      return LocateInPreparedPolygon(pb.point, *pe) != RingLocation::kOutside;
    }
    return pred_internal::ContainsSimple(parts[k], pb);
  }

  /// DistanceSimple(pa, parts[k]) with the point-vs-polygon intersection
  /// probe served from cached edges.
  double DistanceToPart(const SimplePart& pa, size_t k) const {
    const PolyEdges* pe = EdgesFor(k);
    if (pe != nullptr && pa.type == GeometryType::kPoint) {
      if (LocateInPreparedPolygon(pa.point, *pe) != RingLocation::kOutside) {
        return 0.0;
      }
      return pred_internal::DistancePointPolyBoundary(pa.point,
                                                      *parts[k].poly);
    }
    return pred_internal::DistanceSimple(pa, parts[k]);
  }
};

PreparedGeometry::PreparedGeometry(const Geometry& geo)
    : impl_(std::make_unique<Impl>()) {
  impl_->geo = &geo;
  impl_->parts = pred_internal::Decompose(geo);
  impl_->interior = geo.Centroid();
  if (geo.type() == GeometryType::kPolygon ||
      geo.type() == GeometryType::kMultiPolygon) {
    impl_->poly_edges.reserve(geo.polygons().size());
    for (const auto& poly : geo.polygons()) {
      PolyEdges pe;
      pe.shell = BuildRingEdges(poly.shell);
      pe.holes.reserve(poly.holes.size());
      for (const auto& hole : poly.holes) {
        pe.holes.push_back(BuildRingEdges(hole));
      }
      impl_->poly_edges.push_back(std::move(pe));
    }
  }
}

PreparedGeometry::~PreparedGeometry() = default;
PreparedGeometry::PreparedGeometry(PreparedGeometry&&) noexcept = default;
PreparedGeometry& PreparedGeometry::operator=(PreparedGeometry&&) noexcept =
    default;

const Geometry& PreparedGeometry::geometry() const { return *impl_->geo; }

const Envelope& PreparedGeometry::envelope() const {
  return impl_->geo->envelope();
}

const Coordinate& PreparedGeometry::InteriorPoint() const {
  return impl_->interior;
}

bool PreparedGeometry::IntersectedBy(const Geometry& other) const {
  const Impl& im = *impl_;
  // Mirrors Intersects(other, geometry()): envelope prefilter, then every
  // (other part, own part) pair in the same order.
  if (!other.envelope().Intersects(im.geo->envelope())) return false;
  return AnyPart(other, [&im](const SimplePart& pa) {
    for (size_t k = 0; k < im.parts.size(); ++k) {
      if (im.IntersectsPart(pa, k)) return true;
    }
    return false;
  });
}

bool PreparedGeometry::Contains(const Geometry& other) const {
  const Impl& im = *impl_;
  // Mirrors Contains(geometry(), other): every part of `other` must be
  // covered by some single own part.
  if (!im.geo->envelope().Contains(other.envelope())) return false;
  return !AnyPart(other, [&im](const SimplePart& pb) {
    for (size_t k = 0; k < im.parts.size(); ++k) {
      if (im.PartContains(k, pb)) return false;  // covered: keep going
    }
    return true;  // uncovered part found: abort, Contains is false
  });
}

bool PreparedGeometry::ContainedBy(const Geometry& other) const {
  const Impl& im = *impl_;
  // Mirrors Contains(other, geometry()): the container is `other`, so only
  // the cached decomposition of the own side accelerates this direction.
  if (!other.envelope().Contains(im.geo->envelope())) return false;
  for (const SimplePart& pb : im.parts) {
    const bool covered = AnyPart(other, [&pb](const SimplePart& pa) {
      return pred_internal::ContainsSimple(pa, pb);
    });
    if (!covered) return false;
  }
  return true;
}

namespace {

/// The envelope a point Geometry would carry: grown from the empty envelope
/// with ExpandToInclude, so a NaN coordinate yields the *empty* sentinel
/// (exactly like Geometry's constructor), not a NaN-filled box.
Envelope PointEnvelope(const Coordinate& p) {
  Envelope env;
  env.ExpandToInclude(p);
  return env;
}

}  // namespace

bool PreparedGeometry::IntersectsPoint(const Coordinate& p) const {
  const Impl& im = *impl_;
  // Mirrors IntersectedBy(MakePoint(p)): envelope prefilter, then the
  // single point part against every own part in order.
  if (!PointEnvelope(p).Intersects(im.geo->envelope())) return false;
  const SimplePart pa{GeometryType::kPoint, p, nullptr, nullptr};
  for (size_t k = 0; k < im.parts.size(); ++k) {
    if (im.IntersectsPart(pa, k)) return true;
  }
  return false;
}

bool PreparedGeometry::ContainsPoint(const Coordinate& p) const {
  const Impl& im = *impl_;
  // Mirrors Contains(MakePoint(p)): the point must be covered by some part.
  if (!im.geo->envelope().Contains(PointEnvelope(p))) return false;
  const SimplePart pb{GeometryType::kPoint, p, nullptr, nullptr};
  for (size_t k = 0; k < im.parts.size(); ++k) {
    if (im.PartContains(k, pb)) return true;
  }
  return false;
}

bool PreparedGeometry::ContainedByPoint(const Coordinate& p) const {
  const Impl& im = *impl_;
  // Mirrors ContainedBy(MakePoint(p)): every own part must be covered by
  // the point (only point-like own parts can be).
  if (!PointEnvelope(p).Contains(im.geo->envelope())) return false;
  const SimplePart pa{GeometryType::kPoint, p, nullptr, nullptr};
  for (const SimplePart& pb : im.parts) {
    if (!pred_internal::ContainsSimple(pa, pb)) return false;
  }
  return true;
}

double PreparedGeometry::DistanceFromPoint(const Coordinate& p) const {
  const Impl& im = *impl_;
  // Mirrors DistanceFrom(MakePoint(p)): same part order, same early exit.
  double best = std::numeric_limits<double>::infinity();
  const SimplePart pa{GeometryType::kPoint, p, nullptr, nullptr};
  for (size_t k = 0; k < im.parts.size(); ++k) {
    best = std::min(best, im.DistanceToPart(pa, k));
    if (best == 0.0) break;
  }
  return best;
}

double PreparedGeometry::DistanceFrom(const Geometry& other) const {
  const Impl& im = *impl_;
  // Mirrors Distance(other, geometry()): same pair order, same early exit.
  double best = std::numeric_limits<double>::infinity();
  AnyPart(other, [&im, &best](const SimplePart& pa) {
    for (size_t k = 0; k < im.parts.size(); ++k) {
      best = std::min(best, im.DistanceToPart(pa, k));
      if (best == 0.0) return true;  // abort the part scan
    }
    return false;
  });
  return best;
}

}  // namespace stark
