/// \file prepared.h
/// Prepared geometries (in the JTS PreparedGeometry tradition): a geometry
/// plus cached evaluation structure — the decomposition into simple parts,
/// ring edge lists laid out as structure-of-arrays, and a precomputed
/// interior point — so refining many candidates against the *same* query or
/// join-build geometry stops re-walking raw coordinate vectors per pair.
///
/// Guarantee: every predicate method returns results bit-identical to the
/// corresponding plain entry point in predicates.h (the accelerated paths
/// replicate the exact arithmetic; everything else delegates to the shared
/// kernels). The differential fuzz suite in tests/prepared_geometry_test.cc
/// enforces this.
///
/// Lifetime: a PreparedGeometry holds a pointer to the Geometry it was
/// built from; the Geometry must outlive it. Caches are therefore scoped to
/// one task/query (see docs/PERFORMANCE.md, "Invalidation rules").
#ifndef STARK_GEOMETRY_PREPARED_H_
#define STARK_GEOMETRY_PREPARED_H_

#include <cstddef>
#include <memory>
#include <unordered_map>

#include "common/macros.h"
#include "geometry/geometry.h"

namespace stark {

/// \brief One geometry with precomputed refinement structure.
class PreparedGeometry {
 public:
  /// Prepares \p geo. Keeps a pointer; \p geo must outlive this object.
  explicit PreparedGeometry(const Geometry& geo);
  ~PreparedGeometry();

  PreparedGeometry(PreparedGeometry&&) noexcept;
  PreparedGeometry& operator=(PreparedGeometry&&) noexcept;
  STARK_DISALLOW_COPY_AND_ASSIGN(PreparedGeometry);

  const Geometry& geometry() const;

  /// Cached bounding box (same object as geometry().envelope()).
  const Envelope& envelope() const;

  /// Precomputed interior/representative point (the geometry centroid).
  const Coordinate& InteriorPoint() const;

  /// Equivalent to Intersects(other, geometry()) — and, by symmetry of the
  /// kernels, to Intersects(geometry(), other).
  bool IntersectedBy(const Geometry& other) const;

  /// Equivalent to Contains(geometry(), other).
  bool Contains(const Geometry& other) const;

  /// Equivalent to Contains(other, geometry()).
  bool ContainedBy(const Geometry& other) const;

  /// Equivalent to Distance(other, geometry()) — identical doubles, same
  /// part iteration order.
  double DistanceFrom(const Geometry& other) const;

  // -- Point specializations (columnar batch kernels) ----------------------
  //
  // Each is bit-identical to the generic method applied to MakePoint(p),
  // but reads the coordinate straight from a slab without materializing a
  // Geometry — the per-row cost the batched refinement kernels rely on.

  /// Equivalent to IntersectedBy(Geometry::MakePoint(p)).
  bool IntersectsPoint(const Coordinate& p) const;

  /// Equivalent to Contains(Geometry::MakePoint(p)).
  bool ContainsPoint(const Coordinate& p) const;

  /// Equivalent to ContainedBy(Geometry::MakePoint(p)).
  bool ContainedByPoint(const Coordinate& p) const;

  /// Equivalent to DistanceFrom(Geometry::MakePoint(p)).
  double DistanceFromPoint(const Coordinate& p) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// \brief Pointer-keyed cache of PreparedGeometry instances.
///
/// Keys are Geometry addresses, so the cache is only valid while the keyed
/// geometries stay alive and unmoved — use one cache per task over a stable
/// snapshot (e.g. the broadcast small side) and drop it with the task.
/// Counts hits (repeat lookups) and misses (preparations) for the
/// spatial.prepared.{hits,misses} counters.
class PreparedGeometryCache {
 public:
  PreparedGeometryCache() = default;
  STARK_DISALLOW_COPY_AND_ASSIGN(PreparedGeometryCache);

  /// Returns the prepared form of \p geo, preparing it on first use. The
  /// reference stays valid for the life of the cache.
  const PreparedGeometry& Get(const Geometry& geo) {
    auto it = cache_.find(&geo);
    if (it != cache_.end()) {
      ++hits_;
      return it->second;
    }
    ++misses_;
    return cache_.emplace(&geo, PreparedGeometry(geo)).first->second;
  }

  size_t hits() const { return hits_; }
  size_t misses() const { return misses_; }
  size_t size() const { return cache_.size(); }

 private:
  std::unordered_map<const Geometry*, PreparedGeometry> cache_;
  size_t hits_ = 0;
  size_t misses_ = 0;
};

}  // namespace stark

#endif  // STARK_GEOMETRY_PREPARED_H_
