/// \file wkb.h
/// Well-Known Binary reader and writer (OGC SFA 1.2.1, 2-D). JTS — the
/// geometry library STARK builds on — offers WKB alongside WKT; binary
/// event feeds and compact persistent storage use it here.
#ifndef STARK_GEOMETRY_WKB_H_
#define STARK_GEOMETRY_WKB_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "geometry/geometry.h"

namespace stark {

/// Serializes \p geometry as little-endian WKB.
std::vector<char> WriteWkb(const Geometry& geometry);

/// Parses one WKB geometry (either byte order). Supported types: Point,
/// LineString, Polygon, MultiPoint, MultiPolygon.
Result<Geometry> ParseWkb(const char* data, size_t size);
inline Result<Geometry> ParseWkb(const std::vector<char>& buf) {
  return ParseWkb(buf.data(), buf.size());
}

/// Hex encoding of WriteWkb (the common textual transport of WKB, e.g. in
/// CSV columns: "0101000000...").
std::string WriteWkbHex(const Geometry& geometry);

/// Parses a hex-encoded WKB string.
Result<Geometry> ParseWkbHex(std::string_view hex);

}  // namespace stark

#endif  // STARK_GEOMETRY_WKB_H_
