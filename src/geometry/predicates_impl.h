/// \file predicates_impl.h
/// Internal building blocks shared by predicates.cc and prepared.cc: the
/// decomposition of (multi) geometries into simple parts and the exact
/// part-vs-part predicate kernels. Not part of the public geometry API —
/// include predicates.h / prepared.h instead.
///
/// PreparedGeometry must return *bit-identical* results to the plain
/// predicate entry points, so both compile against this single definition
/// of the arithmetic; any accelerated path in prepared.cc replicates these
/// formulas exactly over its cached layout.
#ifndef STARK_GEOMETRY_PREDICATES_IMPL_H_
#define STARK_GEOMETRY_PREDICATES_IMPL_H_

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "geometry/geometry.h"
#include "geometry/kernels.h"
#include "geometry/predicates.h"

namespace stark {
namespace pred_internal {

constexpr double kPointEps = 1e-12;

inline bool PointsEqual(const Coordinate& a, const Coordinate& b) {
  return std::abs(a.x - b.x) <= kPointEps && std::abs(a.y - b.y) <= kPointEps;
}

/// A non-owning view of one simple component of a (possibly multi) geometry.
struct SimplePart {
  GeometryType type;  // kPoint, kLineString or kPolygon
  Coordinate point{};
  const std::vector<Coordinate>* line = nullptr;
  const PolygonData* poly = nullptr;
};

inline std::vector<SimplePart> Decompose(const Geometry& g) {
  std::vector<SimplePart> parts;
  switch (g.type()) {
    case GeometryType::kPoint:
      parts.push_back({GeometryType::kPoint, g.AsPoint(), nullptr, nullptr});
      break;
    case GeometryType::kMultiPoint:
      for (const auto& c : g.coordinates()) {
        parts.push_back({GeometryType::kPoint, c, nullptr, nullptr});
      }
      break;
    case GeometryType::kLineString:
      parts.push_back(
          {GeometryType::kLineString, {}, &g.coordinates(), nullptr});
      break;
    case GeometryType::kPolygon:
    case GeometryType::kMultiPolygon:
      for (const auto& poly : g.polygons()) {
        parts.push_back({GeometryType::kPolygon, {}, nullptr, &poly});
      }
      break;
  }
  return parts;
}

/// Applies \p fn to every segment (a, b) of a ring or line.
template <typename Fn>
bool AnySegment(const std::vector<Coordinate>& coords, Fn fn) {
  for (size_t i = 0; i + 1 < coords.size(); ++i) {
    if (fn(coords[i], coords[i + 1])) return true;
  }
  return false;
}

/// Applies \p fn to every boundary segment of a polygon (shell + holes).
template <typename Fn>
bool AnyPolygonSegment(const PolygonData& poly, Fn fn) {
  if (AnySegment(poly.shell, fn)) return true;
  for (const auto& hole : poly.holes) {
    if (AnySegment(hole, fn)) return true;
  }
  return false;
}

inline bool PointOnLine(const Coordinate& p,
                        const std::vector<Coordinate>& line) {
  return AnySegment(line, [&](const Coordinate& a, const Coordinate& b) {
    return PointOnSegment(p, a, b);
  });
}

// ---------------------------------------------------------------------------
// Intersects on simple parts
// ---------------------------------------------------------------------------

inline bool IntersectsSimple(const SimplePart& a, const SimplePart& b);

inline bool IntersectsPointPoly(const Coordinate& p, const PolygonData& poly) {
  return LocateInPolygon(p, poly) != RingLocation::kOutside;
}

inline bool IntersectsLineLine(const std::vector<Coordinate>& l1,
                               const std::vector<Coordinate>& l2) {
  return AnySegment(l1, [&](const Coordinate& a, const Coordinate& b) {
    return AnySegment(l2, [&](const Coordinate& c, const Coordinate& d) {
      return SegmentsIntersect(a, b, c, d);
    });
  });
}

inline bool IntersectsLinePoly(const std::vector<Coordinate>& line,
                               const PolygonData& poly) {
  // Either the line crosses/touches the boundary, or it lies entirely in the
  // interior — in the latter case every vertex is inside, so testing one
  // suffices once boundary intersection has been ruled out.
  const bool boundary_hit =
      AnySegment(line, [&](const Coordinate& a, const Coordinate& b) {
        return AnyPolygonSegment(
            poly, [&](const Coordinate& c, const Coordinate& d) {
              return SegmentsIntersect(a, b, c, d);
            });
      });
  if (boundary_hit) return true;
  return IntersectsPointPoly(line.front(), poly);
}

inline bool IntersectsPolyPoly(const PolygonData& pa, const PolygonData& pb) {
  const bool boundary_hit =
      AnyPolygonSegment(pa, [&](const Coordinate& a, const Coordinate& b) {
        return AnyPolygonSegment(
            pb, [&](const Coordinate& c, const Coordinate& d) {
              return SegmentsIntersect(a, b, c, d);
            });
      });
  if (boundary_hit) return true;
  // Disjoint boundaries: one polygon may still be nested inside the other.
  return IntersectsPointPoly(pa.shell.front(), pb) ||
         IntersectsPointPoly(pb.shell.front(), pa);
}

inline bool IntersectsSimple(const SimplePart& a, const SimplePart& b) {
  // Normalize order: point <= line <= polygon.
  if (static_cast<int>(a.type) > static_cast<int>(b.type)) {
    return IntersectsSimple(b, a);
  }
  switch (a.type) {
    case GeometryType::kPoint:
      switch (b.type) {
        case GeometryType::kPoint:
          return PointsEqual(a.point, b.point);
        case GeometryType::kLineString:
          return PointOnLine(a.point, *b.line);
        default:
          return IntersectsPointPoly(a.point, *b.poly);
      }
    case GeometryType::kLineString:
      if (b.type == GeometryType::kLineString) {
        return IntersectsLineLine(*a.line, *b.line);
      }
      return IntersectsLinePoly(*a.line, *b.poly);
    default:
      return IntersectsPolyPoly(*a.poly, *b.poly);
  }
}

// ---------------------------------------------------------------------------
// Contains on simple parts
// ---------------------------------------------------------------------------

/// True iff the open interiors of the segments cross at a single point.
inline bool ProperCrossing(const Coordinate& p1, const Coordinate& p2,
                           const Coordinate& q1, const Coordinate& q2) {
  const int o1 = Orientation(p1, p2, q1);
  const int o2 = Orientation(p1, p2, q2);
  const int o3 = Orientation(q1, q2, p1);
  const int o4 = Orientation(q1, q2, p2);
  return o1 != 0 && o2 != 0 && o3 != 0 && o4 != 0 && o1 != o2 && o3 != o4;
}

inline bool PolygonCoversPoint(const PolygonData& poly, const Coordinate& p) {
  return LocateInPolygon(p, poly) != RingLocation::kOutside;
}

/// Shared core of polygon-contains-line and polygon-contains-polygon: every
/// vertex and every segment midpoint of \p coords must be covered, and no
/// segment may properly cross the polygon boundary.
inline bool PolygonCoversPath(const PolygonData& poly,
                              const std::vector<Coordinate>& coords) {
  for (const auto& c : coords) {
    if (!PolygonCoversPoint(poly, c)) return false;
  }
  for (size_t i = 0; i + 1 < coords.size(); ++i) {
    const Coordinate& a = coords[i];
    const Coordinate& b = coords[i + 1];
    const bool crossing =
        AnyPolygonSegment(poly, [&](const Coordinate& c, const Coordinate& d) {
          return ProperCrossing(a, b, c, d);
        });
    if (crossing) return false;
    const Coordinate mid{(a.x + b.x) / 2.0, (a.y + b.y) / 2.0};
    if (!PolygonCoversPoint(poly, mid)) return false;
  }
  return true;
}

inline bool PolygonContainsPolygon(const PolygonData& outer,
                                   const PolygonData& inner) {
  if (!PolygonCoversPath(outer, inner.shell)) return false;
  for (const auto& hole : inner.holes) {
    // Hole boundaries of the inner polygon must also stay inside the outer.
    if (!PolygonCoversPath(outer, hole)) return false;
  }
  // A hole of the outer polygon overlapping the inner polygon's interior
  // punches out area the inner polygon needs. Detect via (a) hole vertices
  // strictly inside the inner polygon, (b) hole-segment midpoints strictly
  // inside (catches vertex-on-boundary configurations), and (c) a
  // representative interior point of the hole (catches the exact-fill case
  // where the hole ring coincides with the inner shell).
  for (const auto& hole : outer.holes) {
    for (const auto& v : hole) {
      if (LocateInPolygon(v, inner) == RingLocation::kInside) return false;
    }
    for (size_t i = 0; i + 1 < hole.size(); ++i) {
      const Coordinate mid{(hole[i].x + hole[i + 1].x) / 2.0,
                           (hole[i].y + hole[i + 1].y) / 2.0};
      if (LocateInPolygon(mid, inner) == RingLocation::kInside) return false;
    }
    const Coordinate rep = RingCentroid(hole);
    if (LocateInRing(rep, hole) == RingLocation::kInside &&
        LocateInPolygon(rep, inner) == RingLocation::kInside) {
      return false;
    }
  }
  return true;
}

inline bool LineContainsLine(const std::vector<Coordinate>& a,
                             const std::vector<Coordinate>& b) {
  for (const auto& v : b) {
    if (!PointOnLine(v, a)) return false;
  }
  for (size_t i = 0; i + 1 < b.size(); ++i) {
    const Coordinate mid{(b[i].x + b[i + 1].x) / 2.0,
                         (b[i].y + b[i + 1].y) / 2.0};
    if (!PointOnLine(mid, a)) return false;
  }
  return true;
}

inline bool ContainsSimple(const SimplePart& a, const SimplePart& b) {
  switch (a.type) {
    case GeometryType::kPoint:
      return b.type == GeometryType::kPoint && PointsEqual(a.point, b.point);
    case GeometryType::kLineString:
      if (b.type == GeometryType::kPoint) return PointOnLine(b.point, *a.line);
      if (b.type == GeometryType::kLineString) {
        return LineContainsLine(*a.line, *b.line);
      }
      return false;  // a 1-D geometry cannot contain a 2-D one
    default:
      switch (b.type) {
        case GeometryType::kPoint:
          return PolygonCoversPoint(*a.poly, b.point);
        case GeometryType::kLineString:
          return PolygonCoversPath(*a.poly, *b.line);
        default:
          return PolygonContainsPolygon(*a.poly, *b.poly);
      }
  }
}

// ---------------------------------------------------------------------------
// Distance on simple parts
// ---------------------------------------------------------------------------

inline double DistancePointLine(const Coordinate& p,
                                const std::vector<Coordinate>& line) {
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i + 1 < line.size(); ++i) {
    best = std::min(best, DistancePointSegment(p, line[i], line[i + 1]));
  }
  return best;
}

inline double DistancePointPolyBoundary(const Coordinate& p,
                                        const PolygonData& poly) {
  double best = DistancePointLine(p, poly.shell);
  for (const auto& hole : poly.holes) {
    best = std::min(best, DistancePointLine(p, hole));
  }
  return best;
}

inline double DistanceLineLine(const std::vector<Coordinate>& l1,
                               const std::vector<Coordinate>& l2) {
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i + 1 < l1.size(); ++i) {
    for (size_t j = 0; j + 1 < l2.size(); ++j) {
      best = std::min(best, DistanceSegmentSegment(l1[i], l1[i + 1], l2[j],
                                                   l2[j + 1]));
      if (best == 0.0) return 0.0;
    }
  }
  return best;
}

inline double DistanceLinePolyBoundary(const std::vector<Coordinate>& line,
                                       const PolygonData& poly) {
  double best = DistanceLineLine(line, poly.shell);
  for (const auto& hole : poly.holes) {
    best = std::min(best, DistanceLineLine(line, hole));
  }
  return best;
}

inline double DistanceSimple(const SimplePart& a, const SimplePart& b) {
  if (static_cast<int>(a.type) > static_cast<int>(b.type)) {
    return DistanceSimple(b, a);
  }
  if (IntersectsSimple(a, b)) return 0.0;
  switch (a.type) {
    case GeometryType::kPoint:
      switch (b.type) {
        case GeometryType::kPoint:
          return a.point.DistanceTo(b.point);
        case GeometryType::kLineString:
          return DistancePointLine(a.point, *b.line);
        default:
          return DistancePointPolyBoundary(a.point, *b.poly);
      }
    case GeometryType::kLineString:
      if (b.type == GeometryType::kLineString) {
        return DistanceLineLine(*a.line, *b.line);
      }
      return DistanceLinePolyBoundary(*a.line, *b.poly);
    default: {
      // Non-intersecting polygons: boundary-to-boundary distance.
      double best = DistanceLinePolyBoundary(a.poly->shell, *b.poly);
      for (const auto& hole : a.poly->holes) {
        best = std::min(best, DistanceLinePolyBoundary(hole, *b.poly));
      }
      return best;
    }
  }
}

}  // namespace pred_internal
}  // namespace stark

#endif  // STARK_GEOMETRY_PREDICATES_IMPL_H_
