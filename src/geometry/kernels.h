/// \file kernels.h
/// Low-level computational-geometry primitives used by the predicate layer:
/// orientation tests, segment intersection, point-in-ring, and distances.
#ifndef STARK_GEOMETRY_KERNELS_H_
#define STARK_GEOMETRY_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "geometry/coordinate.h"
#include "geometry/envelope.h"

namespace stark {

/// A closed ring is a coordinate sequence whose first and last entries are
/// equal; used as polygon shells and holes.
using Ring = std::vector<Coordinate>;

/// Sign of the cross product (b-a) x (c-a): >0 counter-clockwise turn,
/// <0 clockwise, 0 collinear (within a small tolerance).
int Orientation(const Coordinate& a, const Coordinate& b, const Coordinate& c);

/// True iff \p p lies on the closed segment [a, b].
bool PointOnSegment(const Coordinate& p, const Coordinate& a,
                    const Coordinate& b);

/// True iff segments [p1,p2] and [q1,q2] share at least one point
/// (including endpoint touches and collinear overlap).
bool SegmentsIntersect(const Coordinate& p1, const Coordinate& p2,
                       const Coordinate& q1, const Coordinate& q2);

/// Point-in-ring classification result.
enum class RingLocation { kInside, kBoundary, kOutside };

/// Ray-casting point-in-ring test; the ring must be closed.
RingLocation LocateInRing(const Coordinate& p, const Ring& ring);

/// Minimum distance from \p p to the closed segment [a, b].
double DistancePointSegment(const Coordinate& p, const Coordinate& a,
                            const Coordinate& b);

/// Minimum distance between segments [p1,p2] and [q1,q2]; 0 if they touch.
double DistanceSegmentSegment(const Coordinate& p1, const Coordinate& p2,
                              const Coordinate& q1, const Coordinate& q2);

/// Signed area of a closed ring (positive if counter-clockwise).
double SignedRingArea(const Ring& ring);

/// Centroid of a closed ring by the standard area-weighted formula. Falls
/// back to the vertex mean for degenerate (zero-area) rings.
Coordinate RingCentroid(const Ring& ring);

// ---------------------------------------------------------------------------
// Batched envelope kernels (SoA hot path)
// ---------------------------------------------------------------------------

/// Structure-of-arrays envelope storage: four parallel coordinate arrays
/// instead of an array of Envelope structs. The packed R-tree and the
/// batched filter kernel below read these with unit stride, so a leaf scan
/// touches four dense cache lines instead of pointer-chased nodes.
struct EnvelopeSoA {
  std::vector<double> min_x, min_y, max_x, max_y;

  size_t size() const { return min_x.size(); }
  bool empty() const { return min_x.empty(); }

  void Reserve(size_t n) {
    min_x.reserve(n);
    min_y.reserve(n);
    max_x.reserve(n);
    max_y.reserve(n);
  }

  void PushBack(const Envelope& e) {
    min_x.push_back(e.min_x());
    min_y.push_back(e.min_y());
    max_x.push_back(e.max_x());
    max_y.push_back(e.max_y());
  }

  Envelope Get(size_t i) const {
    return Envelope(min_x[i], min_y[i], max_x[i], max_y[i]);
  }
};

/// \brief Branchless AABB filter over SoA envelope arrays.
///
/// Writes the indices of all envelopes intersecting the query window
/// [qmin_x,qmax_x]x[qmin_y,qmax_y] into \p out_indices (which must have room
/// for \p count entries) and returns how many matched. Decision-equivalent
/// to Envelope::Intersects for every finite envelope: the test is written in
/// the negated !(a > b) form so an empty (inverted) stored envelope never
/// matches. The loop body is branch-free — the hit bit is accumulated into
/// the output cursor instead of taken as a branch — so the CPU never
/// mispredicts on selectivity changes.
inline size_t FilterEnvelopesBatch(const double* min_x, const double* min_y,
                                   const double* max_x, const double* max_y,
                                   size_t count, double qmin_x, double qmin_y,
                                   double qmax_x, double qmax_y,
                                   uint32_t* out_indices) {
  size_t n = 0;
  for (size_t i = 0; i < count; ++i) {
    // Non-short-circuit & keeps the compare chain free of branches.
    const bool hit =
        !(min_x[i] > qmax_x) & !(max_x[i] < qmin_x) & !(min_y[i] > qmax_y) &
        !(max_y[i] < qmin_y);
    out_indices[n] = static_cast<uint32_t>(i);
    n += static_cast<size_t>(hit);
  }
  return n;
}

/// Convenience overload over EnvelopeSoA; appends matches to \p out.
/// Returns the number of matches. An empty \p query matches nothing,
/// mirroring Envelope::Intersects.
size_t FilterEnvelopesBatch(const EnvelopeSoA& envs, const Envelope& query,
                            std::vector<uint32_t>* out);

}  // namespace stark

#endif  // STARK_GEOMETRY_KERNELS_H_
