/// \file kernels.h
/// Low-level computational-geometry primitives used by the predicate layer:
/// orientation tests, segment intersection, point-in-ring, and distances.
#ifndef STARK_GEOMETRY_KERNELS_H_
#define STARK_GEOMETRY_KERNELS_H_

#include <vector>

#include "geometry/coordinate.h"

namespace stark {

/// A closed ring is a coordinate sequence whose first and last entries are
/// equal; used as polygon shells and holes.
using Ring = std::vector<Coordinate>;

/// Sign of the cross product (b-a) x (c-a): >0 counter-clockwise turn,
/// <0 clockwise, 0 collinear (within a small tolerance).
int Orientation(const Coordinate& a, const Coordinate& b, const Coordinate& c);

/// True iff \p p lies on the closed segment [a, b].
bool PointOnSegment(const Coordinate& p, const Coordinate& a,
                    const Coordinate& b);

/// True iff segments [p1,p2] and [q1,q2] share at least one point
/// (including endpoint touches and collinear overlap).
bool SegmentsIntersect(const Coordinate& p1, const Coordinate& p2,
                       const Coordinate& q1, const Coordinate& q2);

/// Point-in-ring classification result.
enum class RingLocation { kInside, kBoundary, kOutside };

/// Ray-casting point-in-ring test; the ring must be closed.
RingLocation LocateInRing(const Coordinate& p, const Ring& ring);

/// Minimum distance from \p p to the closed segment [a, b].
double DistancePointSegment(const Coordinate& p, const Coordinate& a,
                            const Coordinate& b);

/// Minimum distance between segments [p1,p2] and [q1,q2]; 0 if they touch.
double DistanceSegmentSegment(const Coordinate& p1, const Coordinate& p2,
                              const Coordinate& q1, const Coordinate& q2);

/// Signed area of a closed ring (positive if counter-clockwise).
double SignedRingArea(const Ring& ring);

/// Centroid of a closed ring by the standard area-weighted formula. Falls
/// back to the vertex mean for degenerate (zero-area) rings.
Coordinate RingCentroid(const Ring& ring);

}  // namespace stark

#endif  // STARK_GEOMETRY_KERNELS_H_
