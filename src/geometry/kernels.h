/// \file kernels.h
/// Low-level computational-geometry primitives used by the predicate layer:
/// orientation tests, segment intersection, point-in-ring, and distances.
#ifndef STARK_GEOMETRY_KERNELS_H_
#define STARK_GEOMETRY_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "geometry/coordinate.h"
#include "geometry/envelope.h"

namespace stark {

/// A closed ring is a coordinate sequence whose first and last entries are
/// equal; used as polygon shells and holes.
using Ring = std::vector<Coordinate>;

/// Sign of the cross product (b-a) x (c-a): >0 counter-clockwise turn,
/// <0 clockwise, 0 collinear (within a small tolerance).
int Orientation(const Coordinate& a, const Coordinate& b, const Coordinate& c);

/// True iff \p p lies on the closed segment [a, b].
bool PointOnSegment(const Coordinate& p, const Coordinate& a,
                    const Coordinate& b);

/// True iff segments [p1,p2] and [q1,q2] share at least one point
/// (including endpoint touches and collinear overlap).
bool SegmentsIntersect(const Coordinate& p1, const Coordinate& p2,
                       const Coordinate& q1, const Coordinate& q2);

/// Point-in-ring classification result.
enum class RingLocation { kInside, kBoundary, kOutside };

/// Ray-casting point-in-ring test; the ring must be closed.
RingLocation LocateInRing(const Coordinate& p, const Ring& ring);

/// Minimum distance from \p p to the closed segment [a, b].
double DistancePointSegment(const Coordinate& p, const Coordinate& a,
                            const Coordinate& b);

/// Minimum distance between segments [p1,p2] and [q1,q2]; 0 if they touch.
double DistanceSegmentSegment(const Coordinate& p1, const Coordinate& p2,
                              const Coordinate& q1, const Coordinate& q2);

/// Signed area of a closed ring (positive if counter-clockwise).
double SignedRingArea(const Ring& ring);

/// Centroid of a closed ring by the standard area-weighted formula. Falls
/// back to the vertex mean for degenerate (zero-area) rings.
Coordinate RingCentroid(const Ring& ring);

// ---------------------------------------------------------------------------
// Batched envelope kernels (SoA hot path)
// ---------------------------------------------------------------------------

/// Structure-of-arrays envelope storage: four parallel coordinate arrays
/// instead of an array of Envelope structs. The packed R-tree and the
/// batched filter kernel below read these with unit stride, so a leaf scan
/// touches four dense cache lines instead of pointer-chased nodes.
struct EnvelopeSoA {
  std::vector<double> min_x, min_y, max_x, max_y;

  size_t size() const { return min_x.size(); }
  bool empty() const { return min_x.empty(); }

  void Reserve(size_t n) {
    min_x.reserve(n);
    min_y.reserve(n);
    max_x.reserve(n);
    max_y.reserve(n);
  }

  void PushBack(const Envelope& e) {
    min_x.push_back(e.min_x());
    min_y.push_back(e.min_y());
    max_x.push_back(e.max_x());
    max_y.push_back(e.max_y());
  }

  Envelope Get(size_t i) const {
    return Envelope(min_x[i], min_y[i], max_x[i], max_y[i]);
  }
};

/// \brief Branchless AABB filter over SoA envelope arrays.
///
/// Writes the indices of all envelopes intersecting the query window
/// [qmin_x,qmax_x]x[qmin_y,qmax_y] into \p out_indices (which must have room
/// for \p count entries) and returns how many matched. Decision-equivalent
/// to Envelope::Intersects for every finite envelope: the test is written in
/// the negated !(a > b) form so an empty (inverted) stored envelope never
/// matches. The loop body is branch-free — the hit bit is accumulated into
/// the output cursor instead of taken as a branch — so the CPU never
/// mispredicts on selectivity changes.
inline size_t FilterEnvelopesBatch(const double* min_x, const double* min_y,
                                   const double* max_x, const double* max_y,
                                   size_t count, double qmin_x, double qmin_y,
                                   double qmax_x, double qmax_y,
                                   uint32_t* out_indices) {
  size_t n = 0;
  for (size_t i = 0; i < count; ++i) {
    // Non-short-circuit & keeps the compare chain free of branches.
    const bool hit =
        !(min_x[i] > qmax_x) & !(max_x[i] < qmin_x) & !(min_y[i] > qmax_y) &
        !(max_y[i] < qmin_y);
    out_indices[n] = static_cast<uint32_t>(i);
    n += static_cast<size_t>(hit);
  }
  return n;
}

/// Convenience overload over EnvelopeSoA; appends matches to \p out.
/// Returns the number of matches. An empty \p query matches nothing,
/// mirroring Envelope::Intersects.
size_t FilterEnvelopesBatch(const EnvelopeSoA& envs, const Envelope& query,
                            std::vector<uint32_t>* out);

// ---------------------------------------------------------------------------
// Batched refinement kernels (columnar data plane)
// ---------------------------------------------------------------------------
//
// These kernels consume ColumnarBatch slabs directly: \p px / \p py are the
// per-row representative-point arrays and \p cand is a list of row indices
// (typically the survivors of FilterEnvelopesBatch). Each kernel writes the
// surviving indices to \p out (which must have room for \p count entries),
// preserving the input candidate order, and returns how many survived. Like
// FilterEnvelopesBatch, the loops are compaction-style — the hit bit advances
// the output cursor instead of being taken as a branch — so selectivity
// changes never cost mispredictions in the loop itself.
//
// Exactness contract: each spatial kernel evaluates the *same arithmetic* as
// the corresponding PreparedGeometry point predicate (which in turn is
// bit-identical to the plain predicates), so batch and scalar refinement
// agree on every row, including NaN coordinates. The kernels are only valid
// for rows whose geometry is a single point; callers route non-point rows
// through the scalar fallback.

class PreparedGeometry;
enum class TemporalPredicate;

/// Keeps candidates whose point intersects prep's geometry — row i survives
/// iff `prep.IntersectsPoint({px[i], py[i]})`, i.e. exactly
/// `Intersects(MakePoint(p), prep.geometry())`.
size_t RefineIntersectsBatch(const PreparedGeometry& prep, const double* px,
                             const double* py, const uint32_t* cand,
                             size_t count, uint32_t* out);

/// Keeps candidates whose point is contained in prep's geometry — row i
/// survives iff `prep.ContainsPoint(p)`, i.e. `Contains(prep.geometry(), p)`.
size_t RefineContainsBatch(const PreparedGeometry& prep, const double* px,
                           const double* py, const uint32_t* cand,
                           size_t count, uint32_t* out);

/// Keeps candidates whose point contains prep's geometry (only possible when
/// prep is itself point-like) — row i survives iff
/// `prep.ContainedByPoint(p)`, i.e. `Contains(MakePoint(p), prep.geometry())`.
size_t RefineContainedByBatch(const PreparedGeometry& prep, const double* px,
                              const double* py, const uint32_t* cand,
                              size_t count, uint32_t* out);

/// Keeps candidates whose point lies within \p max_distance of prep's
/// geometry — row i survives iff `prep.DistanceFromPoint(p) <= max_distance`
/// (identical doubles to `Distance(MakePoint(p), prep.geometry())`).
size_t RefineWithinDistanceBatch(const PreparedGeometry& prep,
                                 const double* px, const double* py,
                                 const uint32_t* cand, size_t count,
                                 double max_distance, uint32_t* out);

/// \brief Branchless combined-temporal batch kernel over timestamp slabs.
///
/// Implements the temporal half of the paper's combined rule (formulas
/// (1)-(3)) for one fixed query interval against a batch: a row survives iff
/// both sides are untimed, or both are timed and the temporal predicate
/// holds between them. A timed/untimed mix never survives. Rows are timed
/// when `has_time[i] != 0`; the t_start/t_end slab values of untimed rows
/// are ignored. \p query_is_left picks which operand the query interval
/// fills in EvalTemporalPredicate(pred, left, right); kIntersects is
/// symmetric, kContains/kContainedBy are not.
size_t TemporalOverlapBatch(const int64_t* t_start, const int64_t* t_end,
                            const uint8_t* has_time, bool query_has_time,
                            int64_t query_start, int64_t query_end,
                            TemporalPredicate pred, bool query_is_left,
                            const uint32_t* cand, size_t count, uint32_t* out);

}  // namespace stark

#endif  // STARK_GEOMETRY_KERNELS_H_
